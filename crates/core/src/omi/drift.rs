//! Scene-drift detection: flagging §II case-3 frames online.
//!
//! The paper observes that "the prediction confidence can be used to
//! indicate whether such models exist" — i.e. a persistently low model
//! allocation confidence signals the device has entered a scene no
//! repository model covers (case 3 of the problem formulation), and fresh
//! footage should be collected for repository expansion
//! ([`AnoleSystem::extend_with_frames`](crate::AnoleSystem::extend_with_frames)).
//!
//! [`DriftDetector`] keeps a rolling window of top-1 suitability values and
//! reports drift when the window mean stays below a calibrated floor.

use std::collections::VecDeque;

use anole_data::{DrivingDataset, FrameRef};
use anole_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::{AnoleError, AnoleSystem};

/// Current drift judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftState {
    /// Confidence is consistent with scenes seen at profiling time.
    Nominal,
    /// Confidence has stayed below the calibrated floor for a full window:
    /// the stream is likely outside every model's distribution (case 3).
    Drifting,
}

/// Rolling-confidence drift detector.
///
/// # Examples
///
/// ```
/// use anole_core::omi::{DriftDetector, DriftState};
///
/// let mut detector = DriftDetector::new(4, 0.5);
/// for _ in 0..4 {
///     detector.observe(0.9);
/// }
/// assert_eq!(detector.state(), DriftState::Nominal);
/// for _ in 0..4 {
///     detector.observe(0.1);
/// }
/// assert_eq!(detector.state(), DriftState::Drifting);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftDetector {
    window: usize,
    floor: f32,
    history: VecDeque<f32>,
    drift_events: usize,
}

impl DriftDetector {
    /// Creates a detector with a rolling `window` and confidence `floor`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize, floor: f32) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            floor,
            history: VecDeque::with_capacity(window),
            drift_events: 0,
        }
    }

    /// Calibrates the floor from a trained system: the `quantile` of the
    /// top-1 suitability over the given (validation) frames. Streams whose
    /// rolling confidence sits below what the weakest calibration frames
    /// achieved are flagged.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors from the decision model.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, `refs` is empty, or `quantile` is outside
    /// `(0, 1)`.
    pub fn calibrated(
        system: &AnoleSystem,
        dataset: &DrivingDataset,
        refs: &[FrameRef],
        window: usize,
        quantile: f32,
    ) -> Result<Self, AnoleError> {
        assert!(!refs.is_empty(), "calibration set is empty");
        assert!(quantile > 0.0 && quantile < 1.0, "quantile must be in (0,1)");
        let x = dataset.features_matrix(refs);
        let probs = system.decision().suitability(&x)?;
        let mut confidences: Vec<f32> = (0..probs.rows())
            .map(|i| {
                let row = probs.row(i);
                row[anole_tensor::argmax(row).expect("non-empty")]
            })
            .collect();
        confidences.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((confidences.len() - 1) as f32 * quantile) as usize;
        Ok(Self::new(window, confidences[idx]))
    }

    /// The calibrated confidence floor.
    pub fn floor(&self) -> f32 {
        self.floor
    }

    /// Feeds one frame's top-1 suitability; returns the updated state.
    pub fn observe(&mut self, confidence: f32) -> DriftState {
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(confidence);
        let state = self.state();
        if state == DriftState::Drifting && self.history.len() == self.window {
            self.drift_events += 1;
        }
        state
    }

    /// Convenience: observes a frame directly through a system's decision
    /// model.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors from the decision model.
    pub fn observe_frame(
        &mut self,
        system: &AnoleSystem,
        features: &[f32],
    ) -> Result<DriftState, AnoleError> {
        let probs = system.decision().suitability(&Matrix::row_vector(features))?;
        let row = probs.row(0);
        Ok(self.observe(row[anole_tensor::argmax(row).expect("non-empty")]))
    }

    /// Current state: drifting once a *full* window sits below the floor.
    pub fn state(&self) -> DriftState {
        if self.history.len() < self.window {
            return DriftState::Nominal;
        }
        let mean: f32 = self.history.iter().sum::<f32>() / self.history.len() as f32;
        if mean < self.floor {
            DriftState::Drifting
        } else {
            DriftState::Nominal
        }
    }

    /// Number of observations that reported `Drifting` so far.
    pub fn drift_events(&self) -> usize {
        self.drift_events
    }

    /// Clears the rolling window (e.g. after an expansion deployed).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

/// Embedding-space OOD scorer: distance of a frame's scene embedding to the
/// nearest training-scene centroid.
///
/// The decision model's softmax confidence flattens as the repository
/// grows, which weakens confidence-based drift detection; the scene
/// *representation* keeps discriminating, because an unseen attribute
/// combination lands away from every training-scene centroid. Calibrate a
/// distance ceiling on validation frames and flag streams whose rolling
/// distance exceeds it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneDistanceScorer {
    centroids: Matrix,
}

impl SceneDistanceScorer {
    /// Builds per-scene-class centroids from the referenced (training)
    /// frames' embeddings.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors; fails with
    /// [`AnoleError::InsufficientData`] when `refs` is empty.
    pub fn calibrate(
        system: &AnoleSystem,
        dataset: &DrivingDataset,
        refs: &[FrameRef],
    ) -> Result<Self, AnoleError> {
        if refs.is_empty() {
            return Err(AnoleError::InsufficientData {
                stage: "scene-distance scorer",
                detail: "no calibration frames".into(),
            });
        }
        let scene_model = system.scene_model();
        let x = dataset.features_matrix(refs);
        let emb = scene_model.embed(&x)?;
        let classes = scene_model.class_count();
        let mut sums = Matrix::zeros(classes, emb.cols());
        let mut counts = vec![0usize; classes];
        for (i, &r) in refs.iter().enumerate() {
            let scene = dataset.clips()[r.clip].attributes.scene_index();
            if let Some(class) = scene_model.class_of_semantic(scene) {
                counts[class] += 1;
                for (s, &v) in sums.row_mut(class).iter_mut().zip(emb.row(i).iter()) {
                    *s += v;
                }
            }
        }
        let kept: Vec<usize> = (0..classes).filter(|&c| counts[c] > 0).collect();
        let mut centroids = Matrix::zeros(kept.len(), emb.cols());
        for (dst, &class) in kept.iter().enumerate() {
            let inv = 1.0 / counts[class] as f32;
            for (d, &s) in centroids.row_mut(dst).iter_mut().zip(sums.row(class).iter()) {
                *d = s * inv;
            }
        }
        Ok(Self { centroids })
    }

    /// Distance of one frame's embedding to its nearest centroid.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors from the scene model.
    pub fn score(&self, system: &AnoleSystem, features: &[f32]) -> Result<f32, AnoleError> {
        let emb = system
            .scene_model()
            .embed(&Matrix::row_vector(features))?;
        let mut best = f32::INFINITY;
        for c in 0..self.centroids.rows() {
            best = best.min(anole_tensor::l2_distance(emb.row(0), self.centroids.row(c)));
        }
        Ok(best)
    }

    /// The `quantile` of distances over a reference (validation) set — the
    /// ceiling above which a stream counts as drifting.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors.
    ///
    /// # Panics
    ///
    /// Panics if `refs` is empty or `quantile` is outside `(0, 1)`.
    pub fn ceiling(
        &self,
        system: &AnoleSystem,
        dataset: &DrivingDataset,
        refs: &[FrameRef],
        quantile: f32,
    ) -> Result<f32, AnoleError> {
        assert!(!refs.is_empty(), "reference set is empty");
        assert!(quantile > 0.0 && quantile < 1.0, "quantile must be in (0,1)");
        // One batched embedding pass instead of a row-vector forward per
        // frame; each row matches the per-frame path bit-for-bit.
        let x = dataset.features_matrix(refs);
        let emb = system.scene_model().embed(&x)?;
        let mut distances = Vec::with_capacity(refs.len());
        for i in 0..emb.rows() {
            let mut best = f32::INFINITY;
            for c in 0..self.centroids.rows() {
                best = best.min(anole_tensor::l2_distance(emb.row(i), self.centroids.row(c)));
            }
            distances.push(best);
        }
        distances.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Ok(distances[((distances.len() - 1) as f32 * quantile) as usize])
    }

    /// Adds a centroid for newly covered footage (after a repository
    /// expansion the scene is no longer out-of-distribution and must stop
    /// being flagged).
    ///
    /// # Errors
    ///
    /// Surfaces inference errors; fails with
    /// [`AnoleError::InsufficientData`] when `frames` is empty.
    pub fn add_centroid(
        &mut self,
        system: &AnoleSystem,
        frames: &[anole_data::Frame],
    ) -> Result<(), AnoleError> {
        if frames.is_empty() {
            return Err(AnoleError::InsufficientData {
                stage: "scene-distance scorer",
                detail: "no frames for the new centroid".into(),
            });
        }
        let dim = system.scene_model().embedding_dim();
        let mut sum = vec![0.0f32; dim];
        for frame in frames {
            let emb = system
                .scene_model()
                .embed(&Matrix::row_vector(&frame.features))?;
            for (s, &v) in sum.iter_mut().zip(emb.row(0).iter()) {
                *s += v;
            }
        }
        let inv = 1.0 / frames.len() as f32;
        sum.iter_mut().for_each(|v| *v *= inv);
        let centroid = Matrix::row_vector(&sum);
        self.centroids = Matrix::vstack(&[&self.centroids, &centroid]).expect("same width");
        Ok(())
    }

    /// Number of centroids the scorer currently holds.
    pub fn centroid_count(&self) -> usize {
        self.centroids.rows()
    }

    /// Builds a [`DriftDetector`] over this scorer: internally the detector
    /// watches *negated* distances, so its below-floor rule flags
    /// above-ceiling distances. Feed it `-scorer.score(...)`, or use
    /// [`SceneDistanceScorer::observe_frame`].
    pub fn detector(&self, window: usize, ceiling: f32) -> DriftDetector {
        DriftDetector::new(window, -ceiling)
    }

    /// Scores a frame and feeds the (negated) distance into `detector`.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors.
    pub fn observe_frame(
        &self,
        detector: &mut DriftDetector,
        system: &AnoleSystem,
        features: &[f32],
    ) -> Result<DriftState, AnoleError> {
        let distance = self.score(system, features)?;
        Ok(detector.observe(-distance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnoleConfig;
    use anole_data::{
        ClipId, DatasetConfig, DatasetSource, Location, SceneAttributes, TimeOfDay, Weather,
    };
    use anole_tensor::Seed;

    #[test]
    fn nominal_until_window_fills() {
        let mut d = DriftDetector::new(3, 0.5);
        assert_eq!(d.observe(0.1), DriftState::Nominal);
        assert_eq!(d.observe(0.1), DriftState::Nominal);
        assert_eq!(d.observe(0.1), DriftState::Drifting);
        assert_eq!(d.drift_events(), 1);
    }

    #[test]
    fn recovers_when_confidence_returns() {
        let mut d = DriftDetector::new(2, 0.5);
        d.observe(0.1);
        d.observe(0.1);
        assert_eq!(d.state(), DriftState::Drifting);
        d.observe(0.9);
        d.observe(0.9);
        assert_eq!(d.state(), DriftState::Nominal);
        d.reset();
        assert_eq!(d.state(), DriftState::Nominal);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = DriftDetector::new(0, 0.5);
    }

    #[test]
    fn embedding_scorer_separates_exotic_scenes() {
        let dataset =
            anole_data::DrivingDataset::generate(&DatasetConfig::small(), Seed(164));
        let system = crate::AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(165)).unwrap();
        let split = dataset.split();
        let scorer = SceneDistanceScorer::calibrate(&system, &dataset, &split.train).unwrap();
        let ceiling = scorer
            .ceiling(&system, &dataset, &split.val, 0.9)
            .unwrap();
        assert!(ceiling > 0.0);

        // Mean distance of an exotic stream must exceed the ceiling more
        // often than a seen test stream does.
        let exceed = |frames: &[anole_data::Frame]| {
            frames
                .iter()
                .filter(|f| scorer.score(&system, &f.features).unwrap() > ceiling)
                .count() as f32
                / frames.len() as f32
        };
        let seen: Vec<anole_data::Frame> = split
            .test
            .iter()
            .take(150)
            .map(|&r| dataset.frame(r).clone())
            .collect();
        let exotic_attrs =
            SceneAttributes::new(Weather::Foggy, Location::TollBooth, TimeOfDay::Night);
        let exotic = dataset.world().generate_clip(
            ClipId(8100),
            DatasetSource::Shd,
            exotic_attrs,
            150,
            1.0,
            Seed(166),
        );
        assert!(
            exceed(&exotic.frames) > 2.0 * exceed(&seen).max(0.01),
            "exotic {:.2} vs seen {:.2}",
            exceed(&exotic.frames),
            exceed(&seen)
        );

        // The detector wrapper fires on the exotic stream.
        let mut detector = scorer.detector(10, ceiling);
        let mut drift = 0;
        for f in &exotic.frames {
            if scorer.observe_frame(&mut detector, &system, &f.features).unwrap()
                == DriftState::Drifting
            {
                drift += 1;
            }
        }
        assert!(drift > 0, "embedding detector never fired on the exotic stream");
    }

    #[test]
    fn calibrated_detector_flags_exotic_scenes_more_than_seen_ones() {
        let dataset =
            anole_data::DrivingDataset::generate(&DatasetConfig::small(), Seed(161));
        let system = crate::AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(162)).unwrap();
        let split = dataset.split();
        let mut detector =
            DriftDetector::calibrated(&system, &dataset, &split.val, 10, 0.1).unwrap();
        assert!(detector.floor() > 0.0);

        // Seen test stream: mostly nominal.
        let mut seen_drift = 0usize;
        for &r in split.test.iter().take(200) {
            if detector.observe_frame(&system, &dataset.frame(r).features).unwrap()
                == DriftState::Drifting
            {
                seen_drift += 1;
            }
        }

        // Exotic never-seen scene: drift should fire more often.
        detector.reset();
        let exotic = SceneAttributes::new(Weather::Snowy, Location::GasStation, TimeOfDay::Night);
        let clip = dataset.world().generate_clip(
            ClipId(8000),
            DatasetSource::Shd,
            exotic,
            200,
            1.0,
            Seed(163),
        );
        let mut exotic_drift = 0usize;
        for frame in &clip.frames {
            if detector.observe_frame(&system, &frame.features).unwrap() == DriftState::Drifting {
                exotic_drift += 1;
            }
        }
        assert!(
            exotic_drift > seen_drift,
            "exotic {exotic_drift} vs seen {seen_drift}"
        );
    }
}
