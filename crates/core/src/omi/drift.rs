//! Scene-drift detection: flagging §II case-3 frames online.
//!
//! The paper observes that "the prediction confidence can be used to
//! indicate whether such models exist" — i.e. a persistently low model
//! allocation confidence signals the device has entered a scene no
//! repository model covers (case 3 of the problem formulation), and fresh
//! footage should be collected for repository expansion
//! ([`AnoleSystem::extend_with_frames`](crate::AnoleSystem::extend_with_frames)).
//!
//! [`DriftDetector`] keeps a rolling window of a calibrated signal and
//! latches into [`DriftState::Drifting`] when the window mean stays past a
//! calibrated floor for `enter_windows` consecutive observations; it
//! unlatches after `exit_windows` consecutive in-distribution observations
//! (hysteresis), and emits at most one typed [`DriftEvent`] per `cooldown`
//! observations. Three calibrated signals feed it:
//!
//! * **top-1 suitability confidence** ([`DriftDetector::calibrated`]),
//! * **decision entropy** ([`DriftDetector::entropy_calibrated`]) — the
//!   router's normalized output entropy rises when no specialist fits,
//! * **confusion vs a pinned baseline** ([`BaselineConfusion`]) — the
//!   routed specialist and the scene-agnostic pinned model disagree more
//!   under shift, because they fail in different ways,
//!
//! plus the embedding-space [`SceneDistanceScorer`], which keeps
//! discriminating as the repository grows and softmax confidence flattens.

use std::collections::VecDeque;

use anole_data::{DrivingDataset, FrameRef};
use anole_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::{AnoleError, AnoleSystem};

/// Current drift judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DriftState {
    /// Confidence is consistent with scenes seen at profiling time.
    #[default]
    Nominal,
    /// The calibrated signal has stayed past its floor long enough: the
    /// stream is likely outside every model's distribution (case 3).
    Drifting,
}

impl std::fmt::Display for DriftState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DriftState::Nominal => "nominal",
            DriftState::Drifting => "drifting",
        })
    }
}

/// Which calibrated signal a detector (or an emitted event) watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DriftSignal {
    /// Top-1 suitability of the decision model.
    #[default]
    Confidence,
    /// Normalized entropy of the decision model's suitability distribution.
    DecisionEntropy,
    /// Disagreement between the routed specialist and the pinned baseline.
    BaselineConfusion,
    /// Embedding distance to the nearest training-scene centroid.
    SceneDistance,
}

/// A typed drift alarm: the detector latched into
/// [`DriftState::Drifting`] (outside any cooldown window).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftEvent {
    /// Observation index (0-based) at which the event fired.
    pub frame: usize,
    /// The signal that tripped.
    pub signal: DriftSignal,
    /// Rolling window mean at emission.
    pub window_mean: f32,
    /// The calibrated floor the mean crossed.
    pub floor: f32,
}

/// Rolling-signal drift detector with hysteresis and cooldown.
///
/// # Examples
///
/// ```
/// use anole_core::omi::{DriftDetector, DriftState};
///
/// let mut detector = DriftDetector::new(4, 0.5);
/// for _ in 0..4 {
///     detector.observe(0.9).unwrap();
/// }
/// assert_eq!(detector.state(), DriftState::Nominal);
/// for _ in 0..4 {
///     detector.observe(0.1).unwrap();
/// }
/// assert_eq!(detector.state(), DriftState::Drifting);
/// assert_eq!(detector.events().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftDetector {
    window: usize,
    floor: f32,
    history: VecDeque<f32>,
    drift_events: usize,
    #[serde(default = "one")]
    enter_windows: usize,
    #[serde(default = "one")]
    exit_windows: usize,
    #[serde(default)]
    cooldown: usize,
    #[serde(default)]
    signal: DriftSignal,
    #[serde(default)]
    observations: usize,
    #[serde(default)]
    below_streak: usize,
    #[serde(default)]
    above_streak: usize,
    #[serde(default)]
    latched: bool,
    #[serde(default)]
    last_event_at: Option<usize>,
    #[serde(default)]
    events: Vec<DriftEvent>,
}

fn one() -> usize {
    1
}

impl DriftDetector {
    /// Creates a detector with a rolling `window` and signal `floor`. A
    /// window of 1 tracks the instantaneous signal. Hysteresis defaults to
    /// trip-and-release on a single window (`enter_windows = exit_windows =
    /// 1`) with no cooldown.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize, floor: f32) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            floor,
            history: VecDeque::with_capacity(window),
            drift_events: 0,
            enter_windows: 1,
            exit_windows: 1,
            cooldown: 0,
            signal: DriftSignal::Confidence,
            observations: 0,
            below_streak: 0,
            above_streak: 0,
            latched: false,
            last_event_at: None,
            events: Vec::new(),
        }
    }

    /// Sets the hysteresis: `enter` consecutive below-floor windows latch
    /// the detector into `Drifting`; `exit` consecutive in-distribution
    /// observations release it. Values are clamped to at least 1.
    #[must_use]
    pub fn with_hysteresis(mut self, enter: usize, exit: usize) -> Self {
        self.enter_windows = enter.max(1);
        self.exit_windows = exit.max(1);
        self
    }

    /// Sets the minimum number of observations between emitted
    /// [`DriftEvent`]s (0 = every latch emits).
    #[must_use]
    pub fn with_cooldown(mut self, cooldown: usize) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Tags the detector (and its emitted events) with the signal it
    /// watches.
    #[must_use]
    pub fn with_signal(mut self, signal: DriftSignal) -> Self {
        self.signal = signal;
        self
    }

    /// Calibrates the floor from a trained system: the `quantile` of the
    /// top-1 suitability over the given (validation) frames. Streams whose
    /// rolling confidence sits below what the weakest calibration frames
    /// achieved are flagged.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors from the decision model.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, `refs` is empty, or `quantile` is outside
    /// `(0, 1)`.
    pub fn calibrated(
        system: &AnoleSystem,
        dataset: &DrivingDataset,
        refs: &[FrameRef],
        window: usize,
        quantile: f32,
    ) -> Result<Self, AnoleError> {
        assert!(!refs.is_empty(), "calibration set is empty");
        assert!(quantile > 0.0 && quantile < 1.0, "quantile must be in (0,1)");
        let x = dataset.features_matrix(refs);
        let probs = system.decision().suitability(&x)?;
        let mut confidences: Vec<f32> = (0..probs.rows())
            .map(|i| {
                let row = probs.row(i);
                row[anole_tensor::argmax(row).expect("non-empty")]
            })
            .collect();
        confidences.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((confidences.len() - 1) as f32 * quantile) as usize;
        Ok(Self::new(window, confidences[idx]))
    }

    /// Calibrates a decision-entropy detector: the floor is the negated
    /// `quantile` of the router's normalized output entropy over `refs`,
    /// and observations feed negated entropies (high entropy ⇒ drifting).
    /// Use [`DriftDetector::observe_entropy`] to feed it.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors from the decision model.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, `refs` is empty, or `quantile` is outside
    /// `(0, 1)`.
    pub fn entropy_calibrated(
        system: &AnoleSystem,
        dataset: &DrivingDataset,
        refs: &[FrameRef],
        window: usize,
        quantile: f32,
    ) -> Result<Self, AnoleError> {
        assert!(!refs.is_empty(), "calibration set is empty");
        assert!(quantile > 0.0 && quantile < 1.0, "quantile must be in (0,1)");
        let x = dataset.features_matrix(refs);
        let probs = system.decision().suitability(&x)?;
        let mut entropies: Vec<f32> =
            (0..probs.rows()).map(|i| normalized_entropy(probs.row(i))).collect();
        entropies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let ceiling = entropies[((entropies.len() - 1) as f32 * quantile) as usize];
        Ok(Self::new(window, -ceiling).with_signal(DriftSignal::DecisionEntropy))
    }

    /// The calibrated signal floor.
    pub fn floor(&self) -> f32 {
        self.floor
    }

    /// Feeds one observation of the calibrated signal; returns the updated
    /// state.
    ///
    /// # Errors
    ///
    /// [`AnoleError::InvalidFrame`] on a NaN or infinite input — a poisoned
    /// confidence would pollute the rolling mean silently otherwise. The
    /// window is left untouched.
    pub fn observe(&mut self, confidence: f32) -> Result<DriftState, AnoleError> {
        if !confidence.is_finite() {
            return Err(AnoleError::InvalidFrame {
                detail: format!("non-finite drift signal {confidence}"),
            });
        }
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(confidence);
        let below = self.window_below_floor();
        if below {
            self.below_streak += 1;
            self.above_streak = 0;
        } else {
            self.above_streak += 1;
            self.below_streak = 0;
        }
        if !self.latched && self.below_streak >= self.enter_windows {
            self.latched = true;
            let off_cooldown = self
                .last_event_at
                .map_or(true, |at| self.observations - at >= self.cooldown);
            if off_cooldown {
                self.last_event_at = Some(self.observations);
                self.events.push(DriftEvent {
                    frame: self.observations,
                    signal: self.signal,
                    window_mean: self.window_mean(),
                    floor: self.floor,
                });
                anole_obs::counter_add!("omi.engine.drift.events", 1);
            }
        } else if self.latched && self.above_streak >= self.exit_windows {
            self.latched = false;
        }
        let state = self.state();
        if state == DriftState::Drifting {
            self.drift_events += 1;
        }
        self.observations += 1;
        Ok(state)
    }

    /// Convenience: observes a frame directly through a system's decision
    /// model.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors from the decision model.
    pub fn observe_frame(
        &mut self,
        system: &AnoleSystem,
        features: &[f32],
    ) -> Result<DriftState, AnoleError> {
        let probs = system.decision().suitability(&Matrix::row_vector(features))?;
        let row = probs.row(0);
        self.observe(row[anole_tensor::argmax(row).expect("non-empty")])
    }

    /// Observes a frame through the decision model's *entropy* (for
    /// detectors built by [`DriftDetector::entropy_calibrated`]).
    ///
    /// # Errors
    ///
    /// Surfaces inference errors from the decision model.
    pub fn observe_entropy(
        &mut self,
        system: &AnoleSystem,
        features: &[f32],
    ) -> Result<DriftState, AnoleError> {
        let probs = system.decision().suitability(&Matrix::row_vector(features))?;
        self.observe(-normalized_entropy(probs.row(0)))
    }

    /// Current state: drifting while the hysteresis latch is set.
    pub fn state(&self) -> DriftState {
        if self.latched {
            DriftState::Drifting
        } else {
            DriftState::Nominal
        }
    }

    /// Number of observations that reported `Drifting` so far.
    pub fn drift_events(&self) -> usize {
        self.drift_events
    }

    /// Typed drift alarms emitted so far (edge-triggered, cooldown-gated).
    pub fn events(&self) -> &[DriftEvent] {
        &self.events
    }

    /// Clears the rolling window and releases the latch (e.g. after an
    /// expansion deployed). Emitted events and counters are kept.
    pub fn reset(&mut self) {
        self.history.clear();
        self.below_streak = 0;
        self.above_streak = 0;
        self.latched = false;
    }

    fn window_below_floor(&self) -> bool {
        self.history.len() == self.window && self.window_mean() < self.floor
    }

    fn window_mean(&self) -> f32 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().sum::<f32>() / self.history.len() as f32
    }
}

/// Normalized Shannon entropy of a probability row, in `[0, 1]` (0 = all
/// mass on one model, 1 = uniform). Rows with fewer than two entries have
/// zero entropy.
pub fn normalized_entropy(row: &[f32]) -> f32 {
    if row.len() < 2 {
        return 0.0;
    }
    let mut h = 0.0f32;
    for &p in row {
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    h / (row.len() as f32).ln()
}

/// Confusion-vs-pinned-baseline drift signal: the fraction of grid cells on
/// which the decision-routed specialist and the pinned (scene-agnostic)
/// baseline disagree. Under distribution shift the two degrade in
/// *different* ways, so their disagreement rises even while each one's own
/// confidence stays plausible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineConfusion {
    baseline: usize,
}

impl BaselineConfusion {
    /// Watches disagreement against the repository model with this id
    /// (typically the engine's pinned fallback model).
    pub fn new(baseline: usize) -> Self {
        Self { baseline }
    }

    /// The pinned baseline's repository id.
    pub fn baseline(&self) -> usize {
        self.baseline
    }

    /// Disagreement of one frame: fraction of cells where the routed top-1
    /// specialist and the baseline disagree.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors from the decision model or detectors.
    pub fn score(&self, system: &AnoleSystem, features: &[f32]) -> Result<f32, AnoleError> {
        let threshold = system.config().detector.threshold;
        let top = system.decision().rank(features)?[0];
        let routed = system.repository().model(top).detect(features, threshold)?;
        let pinned = system.repository().model(self.baseline).detect(features, threshold)?;
        let disagreements = routed.iter().zip(pinned.iter()).filter(|(a, b)| a != b).count();
        Ok(disagreements as f32 / routed.len().max(1) as f32)
    }

    /// The `quantile` of disagreement over a reference (validation) set —
    /// the ceiling above which a stream counts as drifting.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors.
    ///
    /// # Panics
    ///
    /// Panics if `refs` is empty or `quantile` is outside `(0, 1)`.
    pub fn ceiling(
        &self,
        system: &AnoleSystem,
        dataset: &DrivingDataset,
        refs: &[FrameRef],
        quantile: f32,
    ) -> Result<f32, AnoleError> {
        assert!(!refs.is_empty(), "reference set is empty");
        assert!(quantile > 0.0 && quantile < 1.0, "quantile must be in (0,1)");
        let mut scores = Vec::with_capacity(refs.len());
        for &r in refs {
            scores.push(self.score(system, &dataset.frame(r).features)?);
        }
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Ok(scores[((scores.len() - 1) as f32 * quantile) as usize])
    }

    /// Builds a [`DriftDetector`] over this signal: the detector watches
    /// *negated* disagreements, so its below-floor rule flags above-ceiling
    /// confusion.
    pub fn detector(&self, window: usize, ceiling: f32) -> DriftDetector {
        DriftDetector::new(window, -ceiling).with_signal(DriftSignal::BaselineConfusion)
    }

    /// Scores a frame and feeds the (negated) disagreement into `detector`.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors.
    pub fn observe_frame(
        &self,
        detector: &mut DriftDetector,
        system: &AnoleSystem,
        features: &[f32],
    ) -> Result<DriftState, AnoleError> {
        let confusion = self.score(system, features)?;
        detector.observe(-confusion)
    }
}

/// Embedding-space OOD scorer: distance of a frame's scene embedding to the
/// nearest training-scene centroid.
///
/// The decision model's softmax confidence flattens as the repository
/// grows, which weakens confidence-based drift detection; the scene
/// *representation* keeps discriminating, because an unseen attribute
/// combination lands away from every training-scene centroid. Calibrate a
/// distance ceiling on validation frames and flag streams whose rolling
/// distance exceeds it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneDistanceScorer {
    centroids: Matrix,
}

impl SceneDistanceScorer {
    /// Builds per-scene-class centroids from the referenced (training)
    /// frames' embeddings.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors; fails with
    /// [`AnoleError::InsufficientData`] when `refs` is empty.
    pub fn calibrate(
        system: &AnoleSystem,
        dataset: &DrivingDataset,
        refs: &[FrameRef],
    ) -> Result<Self, AnoleError> {
        if refs.is_empty() {
            return Err(AnoleError::InsufficientData {
                stage: "scene-distance scorer",
                detail: "no calibration frames".into(),
            });
        }
        let scene_model = system.scene_model();
        let x = dataset.features_matrix(refs);
        let emb = scene_model.embed(&x)?;
        let classes = scene_model.class_count();
        let mut sums = Matrix::zeros(classes, emb.cols());
        let mut counts = vec![0usize; classes];
        for (i, &r) in refs.iter().enumerate() {
            let scene = dataset.clips()[r.clip].attributes.scene_index();
            if let Some(class) = scene_model.class_of_semantic(scene) {
                counts[class] += 1;
                for (s, &v) in sums.row_mut(class).iter_mut().zip(emb.row(i).iter()) {
                    *s += v;
                }
            }
        }
        let kept: Vec<usize> = (0..classes).filter(|&c| counts[c] > 0).collect();
        let mut centroids = Matrix::zeros(kept.len(), emb.cols());
        for (dst, &class) in kept.iter().enumerate() {
            let inv = 1.0 / counts[class] as f32;
            for (d, &s) in centroids.row_mut(dst).iter_mut().zip(sums.row(class).iter()) {
                *d = s * inv;
            }
        }
        Ok(Self { centroids })
    }

    /// Distance of one frame's embedding to its nearest centroid.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors from the scene model.
    pub fn score(&self, system: &AnoleSystem, features: &[f32]) -> Result<f32, AnoleError> {
        let emb = system
            .scene_model()
            .embed(&Matrix::row_vector(features))?;
        let mut best = f32::INFINITY;
        for c in 0..self.centroids.rows() {
            best = best.min(anole_tensor::l2_distance(emb.row(0), self.centroids.row(c)));
        }
        Ok(best)
    }

    /// The `quantile` of distances over a reference (validation) set — the
    /// ceiling above which a stream counts as drifting.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors.
    ///
    /// # Panics
    ///
    /// Panics if `refs` is empty or `quantile` is outside `(0, 1)`.
    pub fn ceiling(
        &self,
        system: &AnoleSystem,
        dataset: &DrivingDataset,
        refs: &[FrameRef],
        quantile: f32,
    ) -> Result<f32, AnoleError> {
        assert!(!refs.is_empty(), "reference set is empty");
        assert!(quantile > 0.0 && quantile < 1.0, "quantile must be in (0,1)");
        // One batched embedding pass instead of a row-vector forward per
        // frame; each row matches the per-frame path bit-for-bit.
        let x = dataset.features_matrix(refs);
        let emb = system.scene_model().embed(&x)?;
        let mut distances = Vec::with_capacity(refs.len());
        for i in 0..emb.rows() {
            let mut best = f32::INFINITY;
            for c in 0..self.centroids.rows() {
                best = best.min(anole_tensor::l2_distance(emb.row(i), self.centroids.row(c)));
            }
            distances.push(best);
        }
        distances.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Ok(distances[((distances.len() - 1) as f32 * quantile) as usize])
    }

    /// Adds a centroid for newly covered footage (after a repository
    /// expansion the scene is no longer out-of-distribution and must stop
    /// being flagged).
    ///
    /// # Errors
    ///
    /// Surfaces inference errors; fails with
    /// [`AnoleError::InsufficientData`] when `frames` is empty.
    pub fn add_centroid(
        &mut self,
        system: &AnoleSystem,
        frames: &[anole_data::Frame],
    ) -> Result<(), AnoleError> {
        if frames.is_empty() {
            return Err(AnoleError::InsufficientData {
                stage: "scene-distance scorer",
                detail: "no frames for the new centroid".into(),
            });
        }
        let dim = system.scene_model().embedding_dim();
        let mut sum = vec![0.0f32; dim];
        for frame in frames {
            let emb = system
                .scene_model()
                .embed(&Matrix::row_vector(&frame.features))?;
            for (s, &v) in sum.iter_mut().zip(emb.row(0).iter()) {
                *s += v;
            }
        }
        let inv = 1.0 / frames.len() as f32;
        sum.iter_mut().for_each(|v| *v *= inv);
        let centroid = Matrix::row_vector(&sum);
        self.centroids = Matrix::vstack(&[&self.centroids, &centroid]).expect("same width");
        Ok(())
    }

    /// Number of centroids the scorer currently holds.
    pub fn centroid_count(&self) -> usize {
        self.centroids.rows()
    }

    /// Builds a [`DriftDetector`] over this scorer: internally the detector
    /// watches *negated* distances, so its below-floor rule flags
    /// above-ceiling distances. Feed it `-scorer.score(...)`, or use
    /// [`SceneDistanceScorer::observe_frame`].
    pub fn detector(&self, window: usize, ceiling: f32) -> DriftDetector {
        DriftDetector::new(window, -ceiling).with_signal(DriftSignal::SceneDistance)
    }

    /// Scores a frame and feeds the (negated) distance into `detector`.
    ///
    /// # Errors
    ///
    /// Surfaces inference errors.
    pub fn observe_frame(
        &self,
        detector: &mut DriftDetector,
        system: &AnoleSystem,
        features: &[f32],
    ) -> Result<DriftState, AnoleError> {
        let distance = self.score(system, features)?;
        detector.observe(-distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnoleConfig;
    use anole_data::{
        ClipId, DatasetConfig, DatasetSource, Location, SceneAttributes, TimeOfDay, Weather,
    };
    use anole_tensor::Seed;

    #[test]
    fn nominal_until_window_fills() {
        let mut d = DriftDetector::new(3, 0.5);
        assert_eq!(d.observe(0.1).unwrap(), DriftState::Nominal);
        assert_eq!(d.observe(0.1).unwrap(), DriftState::Nominal);
        assert_eq!(d.observe(0.1).unwrap(), DriftState::Drifting);
        assert_eq!(d.drift_events(), 1);
        assert_eq!(d.events().len(), 1);
        assert_eq!(d.events()[0].frame, 2);
        assert_eq!(d.events()[0].signal, DriftSignal::Confidence);
    }

    #[test]
    fn recovers_when_confidence_returns() {
        let mut d = DriftDetector::new(2, 0.5);
        d.observe(0.1).unwrap();
        d.observe(0.1).unwrap();
        assert_eq!(d.state(), DriftState::Drifting);
        d.observe(0.9).unwrap();
        d.observe(0.9).unwrap();
        assert_eq!(d.state(), DriftState::Nominal);
        d.reset();
        assert_eq!(d.state(), DriftState::Nominal);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = DriftDetector::new(0, 0.5);
    }

    #[test]
    fn window_of_one_tracks_instantaneous_signal() {
        let mut d = DriftDetector::new(1, 0.5);
        assert_eq!(d.observe(0.9).unwrap(), DriftState::Nominal);
        assert_eq!(d.observe(0.1).unwrap(), DriftState::Drifting);
        assert_eq!(d.observe(0.9).unwrap(), DriftState::Nominal);
        assert_eq!(d.events().len(), 1);
    }

    #[test]
    fn non_finite_inputs_are_rejected_without_polluting_the_window() {
        let mut d = DriftDetector::new(2, 0.5);
        d.observe(0.9).unwrap();
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let err = d.observe(bad).unwrap_err();
            assert!(matches!(err, AnoleError::InvalidFrame { .. }), "{bad} accepted");
        }
        // The window holds only the one valid observation: a second valid
        // low value cannot yet fill the window with a drifting mean.
        assert_eq!(d.observe(0.9).unwrap(), DriftState::Nominal);
        assert_eq!(d.drift_events(), 0);
    }

    #[test]
    fn hysteresis_requires_consecutive_windows_to_enter_and_exit() {
        let mut d = DriftDetector::new(1, 0.5).with_hysteresis(3, 2);
        // Two below-floor windows: not yet latched.
        assert_eq!(d.observe(0.1).unwrap(), DriftState::Nominal);
        assert_eq!(d.observe(0.1).unwrap(), DriftState::Nominal);
        // Third consecutive: latch.
        assert_eq!(d.observe(0.1).unwrap(), DriftState::Drifting);
        // One good window is not enough to release.
        assert_eq!(d.observe(0.9).unwrap(), DriftState::Drifting);
        // Second consecutive good window releases.
        assert_eq!(d.observe(0.9).unwrap(), DriftState::Nominal);
        // A broken below-floor streak does not latch.
        d.observe(0.1).unwrap();
        d.observe(0.9).unwrap();
        d.observe(0.1).unwrap();
        d.observe(0.1).unwrap();
        assert_eq!(d.state(), DriftState::Nominal);
    }

    #[test]
    fn cooldown_suppresses_rapid_event_emission() {
        let mut d = DriftDetector::new(1, 0.5).with_cooldown(10);
        // First latch emits.
        d.observe(0.1).unwrap();
        assert_eq!(d.events().len(), 1);
        // Release and re-latch immediately: suppressed by cooldown.
        d.observe(0.9).unwrap();
        d.observe(0.1).unwrap();
        assert_eq!(d.events().len(), 1);
        // Far enough in the future, a new latch emits again.
        d.observe(0.9).unwrap();
        for _ in 0..10 {
            d.observe(0.9).unwrap();
        }
        d.observe(0.1).unwrap();
        assert_eq!(d.events().len(), 2);
    }

    #[test]
    fn normalized_entropy_brackets() {
        assert_eq!(normalized_entropy(&[1.0]), 0.0);
        assert!(normalized_entropy(&[1.0, 0.0, 0.0]) < 1e-6);
        let uniform = normalized_entropy(&[0.25, 0.25, 0.25, 0.25]);
        assert!((uniform - 1.0).abs() < 1e-5, "uniform entropy {uniform}");
        let skewed = normalized_entropy(&[0.7, 0.1, 0.1, 0.1]);
        assert!(skewed > 0.0 && skewed < uniform);
    }

    #[test]
    fn detector_round_trips_through_serde_with_new_fields() {
        let mut d = DriftDetector::new(3, 0.4).with_hysteresis(2, 2).with_cooldown(5);
        d.observe(0.1).unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: DriftDetector = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn entropy_and_confusion_signals_fire_on_exotic_scenes() {
        let dataset =
            anole_data::DrivingDataset::generate(&DatasetConfig::small(), Seed(167));
        let system = crate::AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(168)).unwrap();
        let split = dataset.split();
        let exotic_attrs =
            SceneAttributes::new(Weather::Snowy, Location::TollBooth, TimeOfDay::Night);
        let exotic = dataset.world().generate_clip(
            ClipId(8200),
            DatasetSource::Shd,
            exotic_attrs,
            150,
            1.0,
            Seed(169),
        );

        // Entropy detector: calibrated on validation frames, watch negated
        // entropy; the exotic stream must trip it at least as often as the
        // seen stream.
        let mut entropy_seen =
            DriftDetector::entropy_calibrated(&system, &dataset, &split.val, 8, 0.9).unwrap();
        let mut entropy_exotic = entropy_seen.clone();
        let mut seen_hits = 0usize;
        for &r in split.test.iter().take(150) {
            if entropy_seen.observe_entropy(&system, &dataset.frame(r).features).unwrap()
                == DriftState::Drifting
            {
                seen_hits += 1;
            }
        }
        let mut exotic_hits = 0usize;
        for f in &exotic.frames {
            if entropy_exotic.observe_entropy(&system, &f.features).unwrap()
                == DriftState::Drifting
            {
                exotic_hits += 1;
            }
        }
        assert!(
            exotic_hits >= seen_hits,
            "entropy: exotic {exotic_hits} vs seen {seen_hits}"
        );

        // Baseline-confusion detector: same shape of assertion.
        let confusion = BaselineConfusion::new(0);
        assert_eq!(confusion.baseline(), 0);
        let ceiling = confusion.ceiling(&system, &dataset, &split.val, 0.9).unwrap();
        let mut conf_seen = confusion.detector(8, ceiling);
        let mut conf_exotic = conf_seen.clone();
        let mut seen_hits = 0usize;
        for &r in split.test.iter().take(150) {
            if confusion
                .observe_frame(&mut conf_seen, &system, &dataset.frame(r).features)
                .unwrap()
                == DriftState::Drifting
            {
                seen_hits += 1;
            }
        }
        let mut exotic_hits = 0usize;
        for f in &exotic.frames {
            if confusion.observe_frame(&mut conf_exotic, &system, &f.features).unwrap()
                == DriftState::Drifting
            {
                exotic_hits += 1;
            }
        }
        assert!(
            exotic_hits >= seen_hits,
            "confusion: exotic {exotic_hits} vs seen {seen_hits}"
        );
    }

    #[test]
    fn embedding_scorer_separates_exotic_scenes() {
        let dataset =
            anole_data::DrivingDataset::generate(&DatasetConfig::small(), Seed(164));
        let system = crate::AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(165)).unwrap();
        let split = dataset.split();
        let scorer = SceneDistanceScorer::calibrate(&system, &dataset, &split.train).unwrap();
        let ceiling = scorer
            .ceiling(&system, &dataset, &split.val, 0.9)
            .unwrap();
        assert!(ceiling > 0.0);

        // Mean distance of an exotic stream must exceed the ceiling more
        // often than a seen test stream does.
        let exceed = |frames: &[anole_data::Frame]| {
            frames
                .iter()
                .filter(|f| scorer.score(&system, &f.features).unwrap() > ceiling)
                .count() as f32
                / frames.len() as f32
        };
        let seen: Vec<anole_data::Frame> = split
            .test
            .iter()
            .take(150)
            .map(|&r| dataset.frame(r).clone())
            .collect();
        let exotic_attrs =
            SceneAttributes::new(Weather::Foggy, Location::TollBooth, TimeOfDay::Night);
        let exotic = dataset.world().generate_clip(
            ClipId(8100),
            DatasetSource::Shd,
            exotic_attrs,
            150,
            1.0,
            Seed(166),
        );
        assert!(
            exceed(&exotic.frames) > 2.0 * exceed(&seen).max(0.01),
            "exotic {:.2} vs seen {:.2}",
            exceed(&exotic.frames),
            exceed(&seen)
        );

        // The detector wrapper fires on the exotic stream.
        let mut detector = scorer.detector(10, ceiling);
        assert_eq!(detector.events().len(), 0);
        let mut drift = 0;
        for f in &exotic.frames {
            if scorer.observe_frame(&mut detector, &system, &f.features).unwrap()
                == DriftState::Drifting
            {
                drift += 1;
            }
        }
        assert!(drift > 0, "embedding detector never fired on the exotic stream");
        assert!(!detector.events().is_empty());
        assert_eq!(detector.events()[0].signal, DriftSignal::SceneDistance);
    }

    #[test]
    fn calibrated_detector_flags_exotic_scenes_more_than_seen_ones() {
        let dataset =
            anole_data::DrivingDataset::generate(&DatasetConfig::small(), Seed(161));
        let system = crate::AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(162)).unwrap();
        let split = dataset.split();
        let mut detector =
            DriftDetector::calibrated(&system, &dataset, &split.val, 10, 0.1).unwrap();
        assert!(detector.floor() > 0.0);

        // Seen test stream: mostly nominal.
        let mut seen_drift = 0usize;
        for &r in split.test.iter().take(200) {
            if detector.observe_frame(&system, &dataset.frame(r).features).unwrap()
                == DriftState::Drifting
            {
                seen_drift += 1;
            }
        }

        // Exotic never-seen scene: drift should fire more often.
        detector.reset();
        let exotic = SceneAttributes::new(Weather::Snowy, Location::GasStation, TimeOfDay::Night);
        let clip = dataset.world().generate_clip(
            ClipId(8000),
            DatasetSource::Shd,
            exotic,
            200,
            1.0,
            Seed(163),
        );
        let mut exotic_drift = 0usize;
        for frame in &clip.frames {
            if detector.observe_frame(&system, &frame.features).unwrap() == DriftState::Drifting {
                exotic_drift += 1;
            }
        }
        assert!(
            exotic_drift > seen_drift,
            "exotic {exotic_drift} vs seen {seen_drift}"
        );
    }
}
