//! Real-time streaming: what happens when inference is slower than the
//! camera.
//!
//! The paper argues Anole's compressed path is what makes ≥30 FPS possible
//! on embedded devices (§VI-H). This module makes that argument concrete: a
//! camera emits frames at a fixed rate, the processor holds at most the
//! latest pending frame (stale frames are dropped, the standard regime for
//! live vision), and we account drops, staleness, and accuracy **over the
//! whole stream** — a dropped frame scores zero detections against its
//! ground truth, because the vehicle never saw its objects.

use anole_data::{DatasetSource, Frame};
use anole_detect::DetectionCounts;
use anole_device::{DeviceKind, LatencyModel};
use anole_nn::ReferenceModel;
use anole_tensor::{rng_from_seed, Seed};
use serde::{Deserialize, Serialize};

use crate::omi::OnlineEngine;
use crate::{AnoleError, InferenceMethod};

/// Processes one frame, returning detections and the time it took.
///
/// Implemented by the Anole [`OnlineEngine`] (which prices its own
/// decision/detection/hedging path) and by [`TimedMethod`], which prices
/// any baseline's pipeline on a device's latency model.
pub trait FrameProcessor {
    /// Runs one frame, returning `(detections, latency in ms)`.
    ///
    /// # Errors
    ///
    /// Returns a width error if the frame's feature width is wrong.
    fn process(
        &mut self,
        frame: &Frame,
        source: DatasetSource,
    ) -> Result<(Vec<bool>, f32), AnoleError>;
}

impl FrameProcessor for OnlineEngine<'_> {
    fn process(
        &mut self,
        frame: &Frame,
        _source: DatasetSource,
    ) -> Result<(Vec<bool>, f32), AnoleError> {
        let outcome = self.step(&frame.features)?;
        Ok((outcome.detections, outcome.latency_ms))
    }
}

/// Wraps any [`InferenceMethod`] with a device latency model that prices its
/// per-frame pipeline (e.g. one YOLOv3 pass for SDM).
#[derive(Debug)]
pub struct TimedMethod<M> {
    method: M,
    latency: LatencyModel,
    pipeline: Vec<ReferenceModel>,
    rng: rand::rngs::StdRng,
}

impl<M: InferenceMethod> TimedMethod<M> {
    /// Prices `method` on `device`.
    pub fn new(method: M, device: DeviceKind, seed: Seed) -> Self {
        let pipeline = method.pipeline();
        Self {
            method,
            latency: LatencyModel::for_device(device),
            pipeline,
            rng: rng_from_seed(seed),
        }
    }

    /// Consumes the wrapper, returning the inner method.
    pub fn into_inner(self) -> M {
        self.method
    }
}

impl<M: InferenceMethod> FrameProcessor for TimedMethod<M> {
    fn process(
        &mut self,
        frame: &Frame,
        source: DatasetSource,
    ) -> Result<(Vec<bool>, f32), AnoleError> {
        let detections = self.method.predict(frame, source)?;
        let ms: f32 = self
            .pipeline
            .iter()
            .map(|&m| self.latency.inference_ms(m, &mut self.rng))
            .sum();
        Ok((detections, ms))
    }
}

/// Outcome of streaming a clip through a processor at camera rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealTimeReport {
    /// Frames the camera produced.
    pub frames_offered: usize,
    /// Frames actually processed.
    pub frames_processed: usize,
    /// Frames dropped because a newer frame replaced them in the mailbox.
    pub frames_dropped: usize,
    /// Achieved processing rate in frames per second.
    pub achieved_fps: f32,
    /// Mean queueing delay of processed frames (arrival → processing start).
    pub mean_staleness_ms: f32,
    /// F1 over the *whole stream*: dropped frames contribute their ground
    /// truth with no detections (missed objects).
    pub stream_f1: f32,
    /// F1 over processed frames only.
    pub processed_f1: f32,
}

/// Streams `frames` through `processor` with a `camera_fps` camera and a
/// one-slot latest-frame mailbox.
///
/// # Errors
///
/// Returns [`AnoleError::InvalidConfig`] if `camera_fps` is not a strictly
/// positive finite number; surfaces processing errors otherwise.
pub fn run_realtime(
    processor: &mut dyn FrameProcessor,
    frames: &[Frame],
    source: DatasetSource,
    camera_fps: f32,
) -> Result<RealTimeReport, AnoleError> {
    if !(camera_fps > 0.0 && camera_fps.is_finite()) {
        return Err(AnoleError::InvalidConfig {
            what: "camera_fps",
            detail: format!("{camera_fps} is not a positive frame rate"),
        });
    }
    let interval = 1000.0 / camera_fps;

    #[derive(Default)]
    struct SimState {
        stream_counts: DetectionCounts,
        processed_counts: DetectionCounts,
        processed: usize,
        staleness_sum: f32,
        busy_until: f32,
    }

    fn deliver(
        frames: &[Frame],
        idx: usize,
        arrival: f32,
        source: DatasetSource,
        processor: &mut dyn FrameProcessor,
        st: &mut SimState,
    ) -> Result<(), AnoleError> {
        let start = arrival.max(st.busy_until);
        let (detections, ms) = processor.process(&frames[idx], source)?;
        st.busy_until = start + ms;
        st.staleness_sum += start - arrival;
        st.processed += 1;
        st.stream_counts.accumulate(&detections, &frames[idx].truth);
        st.processed_counts.accumulate(&detections, &frames[idx].truth);
        Ok(())
    }

    let mut st = SimState::default();
    let mut dropped = 0usize;
    // The mailbox holds (frame index, arrival time).
    let mut pending: Option<(usize, f32)> = None;
    let mut last_finish = 0.0f32;

    for idx in 0..frames.len() {
        let arrival = idx as f32 * interval;
        // Serve any pending frame that could start before this arrival.
        if let Some((p_idx, p_arrival)) = pending {
            if st.busy_until <= arrival {
                deliver(frames, p_idx, p_arrival, source, processor, &mut st)?;
                pending = None;
            }
        }
        if st.busy_until <= arrival && pending.is_none() {
            deliver(frames, idx, arrival, source, processor, &mut st)?;
        } else {
            // Processor busy: the mailbox keeps only the newest frame.
            if let Some((old_idx, _)) = pending.replace((idx, arrival)) {
                dropped += 1;
                let empty = vec![false; frames[old_idx].truth.len()];
                st.stream_counts.accumulate(&empty, &frames[old_idx].truth);
            }
        }
        last_finish = st.busy_until.max(arrival);
    }
    if let Some((p_idx, p_arrival)) = pending.take() {
        deliver(frames, p_idx, p_arrival, source, processor, &mut st)?;
        last_finish = st.busy_until;
    }

    let duration_ms = last_finish.max(frames.len() as f32 * interval);
    Ok(RealTimeReport {
        frames_offered: frames.len(),
        frames_processed: st.processed,
        frames_dropped: dropped,
        achieved_fps: if duration_ms > 0.0 {
            st.processed as f32 * 1000.0 / duration_ms
        } else {
            0.0
        },
        mean_staleness_ms: if st.processed > 0 {
            st.staleness_sum / st.processed as f32
        } else {
            0.0
        },
        stream_f1: st.stream_counts.f1(),
        processed_f1: st.processed_counts.f1(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnoleConfig, AnoleSystem, Sdm, Ssm};
    use anole_data::{DatasetConfig, DrivingDataset};

    fn world() -> (DrivingDataset, AnoleSystem) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(141));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(142)).unwrap();
        (dataset, system)
    }

    fn test_frames(dataset: &DrivingDataset, n: usize) -> Vec<Frame> {
        dataset
            .split()
            .test
            .iter()
            .take(n)
            .map(|&r| dataset.frame(r).clone())
            .collect()
    }

    #[test]
    fn fast_processor_drops_nothing() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 60);
        let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(143));
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        // 24.7 ms/frame < 100 ms interval at 10 fps.
        let report = run_realtime(&mut engine, &frames, DatasetSource::Shd, 10.0).unwrap();
        assert_eq!(report.frames_dropped, 0);
        assert_eq!(report.frames_processed, 60);
        assert!(report.mean_staleness_ms < 1.0);
        assert_eq!(report.stream_f1, report.processed_f1);
    }

    #[test]
    fn slow_deep_model_drops_most_frames_on_nano() {
        let (dataset, system) = world();
        let split = dataset.split();
        let frames = test_frames(&dataset, 90);
        let sdm = Sdm::train(&dataset, &split.train, system.config(), Seed(144)).unwrap();
        // 313.8 ms per frame vs 33 ms camera interval → ~90% drops.
        let mut timed = TimedMethod::new(sdm, DeviceKind::JetsonNano, Seed(145));
        let report = run_realtime(&mut timed, &frames, DatasetSource::Shd, 30.0).unwrap();
        assert!(
            report.frames_dropped as f32 / report.frames_offered as f32 > 0.7,
            "drop rate {}",
            report.frames_dropped as f32 / report.frames_offered as f32
        );
        assert!(report.achieved_fps < 5.0, "fps {}", report.achieved_fps);
        // Missing most frames must crater stream-level recall.
        assert!(report.stream_f1 < report.processed_f1 * 0.6);
    }

    #[test]
    fn anole_beats_sdm_on_stream_f1_at_camera_rate() {
        let (dataset, system) = world();
        let split = dataset.split();
        let frames = test_frames(&dataset, 120);

        let mut engine = system.online_engine(DeviceKind::JetsonNano, Seed(146));
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        let anole = run_realtime(&mut engine, &frames, DatasetSource::Shd, 30.0).unwrap();

        let sdm = Sdm::train(&dataset, &split.train, system.config(), Seed(147)).unwrap();
        let mut timed = TimedMethod::new(sdm, DeviceKind::JetsonNano, Seed(148));
        let sdm_report = run_realtime(&mut timed, &frames, DatasetSource::Shd, 30.0).unwrap();

        assert!(
            anole.stream_f1 > sdm_report.stream_f1,
            "anole {} vs sdm {}",
            anole.stream_f1,
            sdm_report.stream_f1
        );
        assert!(anole.frames_dropped < sdm_report.frames_dropped);
    }

    #[test]
    fn ssm_timed_method_round_trips_inner() {
        let (dataset, system) = world();
        let split = dataset.split();
        let ssm = Ssm::train(&dataset, &split.train, system.config(), Seed(149)).unwrap();
        let timed = TimedMethod::new(ssm, DeviceKind::Laptop, Seed(150));
        let _inner: Ssm = timed.into_inner();
    }

    #[test]
    fn zero_fps_is_rejected() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 2);
        for bad_fps in [0.0f32, -24.0, f32::NAN, f32::INFINITY] {
            let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(151));
            let err = run_realtime(&mut engine, &frames, DatasetSource::Shd, bad_fps).unwrap_err();
            assert!(
                matches!(err, AnoleError::InvalidConfig { what: "camera_fps", .. }),
                "fps {bad_fps}: unexpected error {err}"
            );
            assert!(err.to_string().contains("camera_fps"), "{err}");
        }
    }
}
