//! Deployment bundles: the offline→online hand-off of Fig. 2.
//!
//! The paper's mobile devices "communicate with a cloud server via an
//! unstable wireless network connection for offline model training and
//! downloading" (§II-A). This module packages a trained [`AnoleSystem`]
//! into a directory bundle — a manifest plus one JSON artifact per model —
//! with checksums verified on load, and prices the download of such a
//! bundle over the [`UnstableLink`] simulator.

use std::path::{Path, PathBuf};

use anole_device::UnstableLink;
use anole_nn::ReferenceModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{AnoleError, AnoleSystem};

/// One artifact in a deployment bundle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// File name within the bundle directory.
    pub file: String,
    /// Human-readable role ("scene model", "compressed model 3", …).
    pub role: String,
    /// Serialized size in bytes (what the device actually stores).
    pub serialized_bytes: u64,
    /// Paper-scale transfer size in bytes (what the download simulator
    /// prices — e.g. 34 MB per compressed model, Table II).
    pub transfer_bytes: u64,
    /// FNV-1a checksum of the serialized artifact.
    pub checksum: u64,
}

/// The bundle manifest: what a device must download before going online.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Bundle format version.
    pub version: u32,
    /// Number of compressed models in the repository.
    pub model_count: usize,
    /// Every artifact, in download order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Total paper-scale bytes a device must transfer.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.transfer_bytes).sum()
    }
}

/// Report of a simulated bundle download over an unstable uplink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DownloadReport {
    /// Wall-clock milliseconds including retries and back-off.
    pub total_ms: f64,
    /// Chunks that timed out and were retried.
    pub retries: usize,
    /// Chunks transferred successfully.
    pub chunks: usize,
}

/// FNV-1a over a byte string — a dependency-free integrity check.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn deploy_err(detail: impl std::fmt::Display) -> AnoleError {
    AnoleError::Deploy {
        detail: detail.to_string(),
    }
}

/// Writes a trained system as a deployment bundle under `dir`.
///
/// Layout: `manifest.json`, `scene_model.json`, `decision.json`,
/// `model_000.json` … Returns the manifest.
///
/// # Errors
///
/// Surfaces filesystem and serialization failures as
/// [`AnoleError::Deploy`].
pub fn save_bundle(system: &AnoleSystem, dir: &Path) -> Result<Manifest, AnoleError> {
    std::fs::create_dir_all(dir).map_err(deploy_err)?;
    let mut entries = Vec::new();

    let mut write = |file: String, role: String, transfer: u64, json: String| -> Result<(), AnoleError> {
        let bytes = json.as_bytes();
        entries.push(ManifestEntry {
            file: file.clone(),
            role,
            serialized_bytes: bytes.len() as u64,
            transfer_bytes: transfer,
            checksum: fnv1a(bytes),
        });
        std::fs::write(dir.join(&file), bytes).map_err(deploy_err)
    };

    let scene_json = serde_json::to_string(system.scene_model()).map_err(deploy_err)?;
    write(
        "scene_model.json".into(),
        "scene model".into(),
        ReferenceModel::Resnet18.weight_bytes(),
        scene_json,
    )?;
    let decision_json = serde_json::to_string(system.decision()).map_err(deploy_err)?;
    write(
        "decision.json".into(),
        "decision model".into(),
        ReferenceModel::DecisionMlp.weight_bytes(),
        decision_json,
    )?;
    for model in system.repository().models() {
        let json = serde_json::to_string(model).map_err(deploy_err)?;
        write(
            format!("model_{:03}.json", model.id),
            format!("compressed model {}", model.id),
            ReferenceModel::Yolov3Tiny.weight_bytes(),
            json,
        )?;
    }
    // The full system (config + suitability sets) for cloud-side resume.
    let system_json = serde_json::to_string(system).map_err(deploy_err)?;
    write("system.json".into(), "full system".into(), 0, system_json)?;

    let manifest = Manifest {
        version: 1,
        model_count: system.repository().len(),
        entries,
    };
    let manifest_json = serde_json::to_string_pretty(&manifest).map_err(deploy_err)?;
    std::fs::write(dir.join("manifest.json"), manifest_json).map_err(deploy_err)?;
    Ok(manifest)
}

/// Reads the manifest of a bundle directory.
///
/// # Errors
///
/// Fails when the manifest is missing or malformed.
pub fn read_manifest(dir: &Path) -> Result<Manifest, AnoleError> {
    let json = std::fs::read_to_string(dir.join("manifest.json")).map_err(deploy_err)?;
    serde_json::from_str(&json).map_err(deploy_err)
}

/// Loads a bundle back into a full system, verifying every checksum.
///
/// # Errors
///
/// Fails when the manifest or any artifact is missing, corrupt (checksum
/// mismatch), or malformed.
pub fn load_bundle(dir: &Path) -> Result<AnoleSystem, AnoleError> {
    let manifest = read_manifest(dir)?;
    for entry in &manifest.entries {
        let bytes = std::fs::read(dir.join(&entry.file)).map_err(deploy_err)?;
        if fnv1a(&bytes) != entry.checksum {
            return Err(deploy_err(format!("checksum mismatch in {}", entry.file)));
        }
    }
    let system_path: PathBuf = dir.join("system.json");
    let json = std::fs::read_to_string(system_path).map_err(deploy_err)?;
    let system: AnoleSystem = serde_json::from_str(&json).map_err(deploy_err)?;
    if system.repository().len() != manifest.model_count {
        return Err(deploy_err(format!(
            "manifest lists {} models, bundle holds {}",
            manifest.model_count,
            system.repository().len()
        )));
    }
    Ok(system)
}

/// Simulates downloading a bundle over an unstable uplink in 256 KiB chunks
/// with retry-on-timeout, returning the wall-clock cost. This is the offline
/// phase, so tail latency is tolerable — the point is that it happens
/// *before* inference, not during (§II-A).
pub fn simulate_download<R: Rng + ?Sized>(
    manifest: &Manifest,
    link: &mut UnstableLink,
    rng: &mut R,
) -> DownloadReport {
    const CHUNK: u64 = 256 * 1024;
    let mut total_ms = 0.0f64;
    let mut retries = 0usize;
    let mut chunks = 0usize;
    for entry in &manifest.entries {
        let mut remaining = entry.transfer_bytes;
        while remaining > 0 {
            let size = remaining.min(CHUNK);
            match link.round_trip_ms(size, rng) {
                Ok(ms) => {
                    total_ms += ms as f64;
                    remaining -= size;
                    chunks += 1;
                }
                Err(timeout) => {
                    total_ms += timeout as f64;
                    retries += 1;
                }
            }
        }
    }
    DownloadReport {
        total_ms,
        retries,
        chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnoleConfig;
    use anole_data::{DatasetConfig, DrivingDataset};
    use anole_device::UnstableLinkConfig;
    use anole_tensor::{rng_from_seed, Seed};

    fn system() -> AnoleSystem {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(131));
        AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(132)).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("anole-bundle-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn bundle_round_trips() {
        let system = system();
        let dir = temp_dir("roundtrip");
        let manifest = save_bundle(&system, &dir).unwrap();
        assert_eq!(manifest.model_count, system.repository().len());
        // scene + decision + models + system.json
        assert_eq!(manifest.entries.len(), system.repository().len() + 3);
        let loaded = load_bundle(&dir).unwrap();
        assert_eq!(&loaded, &system);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let system = system();
        let dir = temp_dir("corrupt");
        save_bundle(&system, &dir).unwrap();
        let victim = dir.join("model_000.json");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&victim, bytes).unwrap();
        let err = load_bundle(&dir).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_fails_cleanly() {
        let dir = temp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_bundle(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transfer_size_matches_paper_scale() {
        let system = system();
        let dir = temp_dir("sizes");
        let manifest = save_bundle(&system, &dir).unwrap();
        let n = system.repository().len() as u64;
        let expected = ReferenceModel::Resnet18.weight_bytes()
            + ReferenceModel::DecisionMlp.weight_bytes()
            + n * ReferenceModel::Yolov3Tiny.weight_bytes();
        assert_eq!(manifest.total_transfer_bytes(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn download_simulation_completes_despite_outages() {
        let system = system();
        let dir = temp_dir("download");
        let manifest = save_bundle(&system, &dir).unwrap();
        let mut link = UnstableLink::new(UnstableLinkConfig::default());
        let mut rng = rng_from_seed(Seed(133));
        let report = simulate_download(&manifest, &mut link, &mut rng);
        assert!(report.total_ms > 0.0);
        let expected_chunks =
            manifest.entries.iter().map(|e| e.transfer_bytes.div_ceil(256 * 1024)).sum::<u64>();
        assert_eq!(report.chunks as u64, expected_chunks);
        // An unstable link makes retries overwhelmingly likely at this size.
        assert!(report.retries > 0, "no retries over {} chunks", report.chunks);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnv1a_is_stable_and_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"anole"), fnv1a(b"anolf"));
        assert_eq!(fnv1a(b"anole"), fnv1a(b"anole"));
    }
}
