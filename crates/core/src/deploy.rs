//! Deployment bundles: the offline→online hand-off of Fig. 2.
//!
//! The paper's mobile devices "communicate with a cloud server via an
//! unstable wireless network connection for offline model training and
//! downloading" (§II-A). This module packages a trained [`AnoleSystem`]
//! into a directory bundle — a manifest plus one JSON artifact per model —
//! with checksums verified on load, and prices the download of such a
//! bundle over the [`UnstableLink`] simulator.

use std::path::{Path, PathBuf};

use anole_cache::TransitionModel;
use anole_data::DrivingDataset;
use anole_device::{UnstableLink, UnstableLinkConfig};
use anole_nn::ReferenceModel;
use anole_tensor::{rng_from_seed, split_seed, Seed};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::omi::FaultInjector;
use crate::{AnoleError, AnoleSystem, RolloutConfig};

/// One artifact in a deployment bundle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// File name within the bundle directory.
    pub file: String,
    /// Human-readable role ("scene model", "compressed model 3", …).
    pub role: String,
    /// Serialized size in bytes (what the device actually stores).
    pub serialized_bytes: u64,
    /// Paper-scale transfer size in bytes (what the download simulator
    /// prices — e.g. 34 MB per compressed model, Table II).
    pub transfer_bytes: u64,
    /// FNV-1a checksum of the serialized artifact.
    pub checksum: u64,
}

/// The bundle manifest: what a device must download before going online.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Bundle format version.
    pub version: u32,
    /// Number of compressed models in the repository.
    pub model_count: usize,
    /// Every artifact, in download order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Total paper-scale bytes a device must transfer.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.transfer_bytes).sum()
    }
}

/// Report of a simulated bundle download over an unstable uplink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DownloadReport {
    /// Wall-clock milliseconds including retries and back-off.
    pub total_ms: f64,
    /// Chunks that timed out and were retried.
    pub retries: usize,
    /// Chunks transferred successfully.
    pub chunks: usize,
}

/// FNV-1a over a byte string — a dependency-free integrity check.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn deploy_err(detail: impl std::fmt::Display) -> AnoleError {
    AnoleError::Deploy {
        detail: detail.to_string(),
    }
}

/// Writes a trained system as a deployment bundle under `dir`.
///
/// Layout: `manifest.json`, `scene_model.json`, `decision.json`,
/// `model_000.json` … Returns the manifest.
///
/// # Errors
///
/// Surfaces filesystem and serialization failures as
/// [`AnoleError::Deploy`].
pub fn save_bundle(system: &AnoleSystem, dir: &Path) -> Result<Manifest, AnoleError> {
    std::fs::create_dir_all(dir).map_err(deploy_err)?;
    let mut entries = Vec::new();

    let mut write = |file: String, role: String, transfer: u64, json: String| -> Result<(), AnoleError> {
        let bytes = json.as_bytes();
        entries.push(ManifestEntry {
            file: file.clone(),
            role,
            serialized_bytes: bytes.len() as u64,
            transfer_bytes: transfer,
            checksum: fnv1a(bytes),
        });
        std::fs::write(dir.join(&file), bytes).map_err(deploy_err)
    };

    let scene_json = serde_json::to_string(system.scene_model()).map_err(deploy_err)?;
    write(
        "scene_model.json".into(),
        "scene model".into(),
        ReferenceModel::Resnet18.weight_bytes(),
        scene_json,
    )?;
    let decision_json = serde_json::to_string(system.decision()).map_err(deploy_err)?;
    write(
        "decision.json".into(),
        "decision model".into(),
        ReferenceModel::DecisionMlp.weight_bytes(),
        decision_json,
    )?;
    for model in system.repository().models() {
        let json = serde_json::to_string(model).map_err(deploy_err)?;
        write(
            format!("model_{:03}.json", model.id),
            format!("compressed model {}", model.id),
            ReferenceModel::Yolov3Tiny.weight_bytes(),
            json,
        )?;
    }
    // The full system (config + suitability sets) for cloud-side resume.
    let system_json = serde_json::to_string(system).map_err(deploy_err)?;
    write("system.json".into(), "full system".into(), 0, system_json)?;

    let manifest = Manifest {
        version: 1,
        model_count: system.repository().len(),
        entries,
    };
    let manifest_json = serde_json::to_string_pretty(&manifest).map_err(deploy_err)?;
    std::fs::write(dir.join("manifest.json"), manifest_json).map_err(deploy_err)?;
    Ok(manifest)
}

/// File name of the optional scene-transition sidecar artifact.
pub const TRANSITION_FILE: &str = "transition.json";

/// Checksummed wrapper around a serialized [`TransitionModel`]. The model is
/// stored as its raw JSON string so the FNV-1a verification on load covers
/// exactly the bytes that were written.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TransitionArtifact {
    checksum: u64,
    model: String,
}

/// Writes a scene-[`TransitionModel`] next to a bundle so the next
/// deployment warm-starts its prefetcher instead of re-learning transitions
/// from scratch.
///
/// The artifact is a *sidecar*: it is deliberately not listed in the
/// manifest, so bundles written before prefetch existed — and bundles whose
/// fleet never uploads a model — stay byte-identical and load unchanged.
///
/// # Errors
///
/// Surfaces filesystem and serialization failures as
/// [`AnoleError::Deploy`].
pub fn save_transition_model(model: &TransitionModel, dir: &Path) -> Result<(), AnoleError> {
    std::fs::create_dir_all(dir).map_err(deploy_err)?;
    let body = serde_json::to_string(model).map_err(deploy_err)?;
    let artifact = TransitionArtifact {
        checksum: fnv1a(body.as_bytes()),
        model: body,
    };
    let json = serde_json::to_string(&artifact).map_err(deploy_err)?;
    std::fs::write(dir.join(TRANSITION_FILE), json).map_err(deploy_err)
}

/// Loads the transition-model sidecar from a bundle directory, if present.
///
/// Returns `Ok(None)` when the bundle has no sidecar (every pre-prefetch
/// bundle). `expected_states` guards against warm-starting an engine with a
/// model learned over a differently-sized repository.
///
/// # Errors
///
/// Fails when the sidecar exists but is corrupt (checksum mismatch),
/// malformed, or sized for a different repository.
pub fn load_transition_model(
    dir: &Path,
    expected_states: usize,
) -> Result<Option<TransitionModel>, AnoleError> {
    let path = dir.join(TRANSITION_FILE);
    let json = match std::fs::read_to_string(&path) {
        Ok(json) => json,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(deploy_err(e)),
    };
    let artifact: TransitionArtifact = serde_json::from_str(&json).map_err(deploy_err)?;
    if fnv1a(artifact.model.as_bytes()) != artifact.checksum {
        return Err(deploy_err(format!("checksum mismatch in {TRANSITION_FILE}")));
    }
    let model: TransitionModel = serde_json::from_str(&artifact.model).map_err(deploy_err)?;
    if model.states() != expected_states {
        return Err(deploy_err(format!(
            "transition model covers {} models, repository holds {expected_states}",
            model.states()
        )));
    }
    Ok(Some(model))
}

/// Reads the manifest of a bundle directory.
///
/// # Errors
///
/// Fails when the manifest is missing or malformed.
pub fn read_manifest(dir: &Path) -> Result<Manifest, AnoleError> {
    let json = std::fs::read_to_string(dir.join("manifest.json")).map_err(deploy_err)?;
    serde_json::from_str(&json).map_err(deploy_err)
}

/// Loads a bundle back into a full system, verifying every checksum.
///
/// # Errors
///
/// Fails when the manifest or any artifact is missing, corrupt (checksum
/// mismatch), or malformed.
pub fn load_bundle(dir: &Path) -> Result<AnoleSystem, AnoleError> {
    let manifest = read_manifest(dir)?;
    for entry in &manifest.entries {
        let bytes = std::fs::read(dir.join(&entry.file)).map_err(deploy_err)?;
        if fnv1a(&bytes) != entry.checksum {
            return Err(deploy_err(format!("checksum mismatch in {}", entry.file)));
        }
    }
    let system_path: PathBuf = dir.join("system.json");
    let json = std::fs::read_to_string(system_path).map_err(deploy_err)?;
    let system: AnoleSystem = serde_json::from_str(&json).map_err(deploy_err)?;
    if system.repository().len() != manifest.model_count {
        return Err(deploy_err(format!(
            "manifest lists {} models, bundle holds {}",
            manifest.model_count,
            system.repository().len()
        )));
    }
    Ok(system)
}

/// Simulates downloading a bundle over an unstable uplink in 256 KiB chunks
/// with retry-on-timeout, returning the wall-clock cost. This is the offline
/// phase, so tail latency is tolerable — the point is that it happens
/// *before* inference, not during (§II-A).
pub fn simulate_download<R: Rng + ?Sized>(
    manifest: &Manifest,
    link: &mut UnstableLink,
    rng: &mut R,
) -> DownloadReport {
    const CHUNK: u64 = 256 * 1024;
    let mut total_ms = 0.0f64;
    let mut retries = 0usize;
    let mut chunks = 0usize;
    for entry in &manifest.entries {
        let mut remaining = entry.transfer_bytes;
        while remaining > 0 {
            let size = remaining.min(CHUNK);
            match link.round_trip_ms(size, rng) {
                Ok(ms) => {
                    total_ms += ms as f64;
                    remaining -= size;
                    chunks += 1;
                }
                Err(timeout) => {
                    total_ms += timeout as f64;
                    retries += 1;
                }
            }
        }
    }
    DownloadReport {
        total_ms,
        retries,
        chunks,
    }
}

/// Report of a resumable bundle download (see [`download_resumable`]).
///
/// Byte accounting is exact: on success,
/// `transferred_bytes == payload_bytes + wasted_bytes` — every byte sent
/// over the link either landed in a verified artifact or is accounted as
/// waste (in-flight progress lost to a link death, or a whole artifact that
/// arrived checksum-corrupt and was re-fetched). Completed artifacts are
/// never re-sent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResumableDownloadReport {
    /// Wall-clock milliseconds including retries and reconnect backoff.
    pub total_ms: f64,
    /// Chunks transferred successfully (including later-wasted ones).
    pub chunks: usize,
    /// Chunks that timed out and were retried within a session.
    pub retries: usize,
    /// Mid-bundle link deaths survived by reconnecting.
    pub link_deaths: usize,
    /// Artifacts that arrived checksum-corrupt and were re-fetched.
    pub corrupt_arrivals: usize,
    /// Download sessions used (1 = the link never died).
    pub sessions: usize,
    /// Paper-scale payload of the manifest, in bytes.
    pub payload_bytes: u64,
    /// Bytes actually sent over the link, re-sent bytes included.
    pub transferred_bytes: u64,
    /// Re-sent bytes: in-flight progress lost to link deaths plus corrupt
    /// arrivals.
    pub wasted_bytes: u64,
    /// Reconnect backoff milliseconds (already included in `total_ms`).
    pub backoff_ms: f64,
}

/// Downloads a bundle over an unstable uplink with per-artifact resume.
///
/// Unlike [`simulate_download`], which models an ideal session, this models
/// the §II-A reality: the link can die mid-bundle (injected via
/// [`FaultKind::LinkDeath`](crate::omi::FaultKind::LinkDeath)) and artifacts
/// can arrive checksum-corrupt
/// ([`FaultKind::TruncatedArtifact`](crate::omi::FaultKind::TruncatedArtifact)).
/// Completion is tracked per manifest entry, so each reconnect session —
/// priced with exponential backoff — re-transfers only the artifacts still
/// missing or checksum-failed; verified artifacts are never re-sent.
///
/// With `injector` `None` (or a zero-fault plan) the link and `rng` are
/// driven through exactly the same call sequence as [`simulate_download`],
/// so `total_ms`/`chunks`/`retries` match it bit-for-bit.
///
/// # Errors
///
/// [`AnoleError::DownloadIncomplete`] when artifacts are still missing
/// after `max_sessions` sessions.
pub fn download_resumable<R: Rng + ?Sized>(
    manifest: &Manifest,
    link: &mut UnstableLink,
    rng: &mut R,
    mut injector: Option<&mut FaultInjector>,
    max_sessions: usize,
) -> Result<ResumableDownloadReport, AnoleError> {
    const CHUNK: u64 = 256 * 1024;
    const BASE_BACKOFF_MS: f64 = 200.0;

    let mut report = ResumableDownloadReport {
        total_ms: 0.0,
        chunks: 0,
        retries: 0,
        link_deaths: 0,
        corrupt_arrivals: 0,
        sessions: 0,
        payload_bytes: manifest.total_transfer_bytes(),
        transferred_bytes: 0,
        wasted_bytes: 0,
        backoff_ms: 0.0,
    };
    let mut complete = vec![false; manifest.entries.len()];

    'sessions: for session in 0..max_sessions.max(1) {
        report.sessions = session + 1;
        if session > 0 {
            // Priced exponential backoff before reconnecting (capped so the
            // simulated wait stays finite under long fault bursts).
            let backoff = BASE_BACKOFF_MS * f64::from(1u32 << (session - 1).min(6) as u32);
            report.backoff_ms += backoff;
            report.total_ms += backoff;
        }
        for (i, entry) in manifest.entries.iter().enumerate() {
            if complete[i] {
                continue;
            }
            // Partial progress does not survive a link death: the in-flight
            // artifact restarts from zero next session (its bytes are waste).
            let mut entry_bytes = 0u64;
            let mut remaining = entry.transfer_bytes;
            while remaining > 0 {
                if injector.as_deref_mut().is_some_and(FaultInjector::link_dies) {
                    report.link_deaths += 1;
                    report.wasted_bytes += entry_bytes;
                    continue 'sessions;
                }
                let size = remaining.min(CHUNK);
                match link.round_trip_ms(size, rng) {
                    Ok(ms) => {
                        report.total_ms += ms as f64;
                        remaining -= size;
                        entry_bytes += size;
                        report.transferred_bytes += size;
                        report.chunks += 1;
                    }
                    Err(timeout) => {
                        report.total_ms += timeout as f64;
                        report.retries += 1;
                    }
                }
            }
            // The device verifies the manifest checksum on arrival; a corrupt
            // artifact stays incomplete and is re-fetched next session.
            if injector
                .as_deref_mut()
                .is_some_and(FaultInjector::artifact_arrives_corrupt)
            {
                report.corrupt_arrivals += 1;
                report.wasted_bytes += entry.transfer_bytes;
            } else {
                complete[i] = true;
            }
        }
        if complete.iter().all(|&c| c) {
            debug_assert_eq!(
                report.transferred_bytes,
                report.payload_bytes + report.wasted_bytes
            );
            return Ok(report);
        }
    }
    Err(AnoleError::DownloadIncomplete {
        missing: complete.iter().filter(|&&c| !c).count(),
        attempts: report.sessions,
    })
}

/// End-to-end routed accuracy of a system on held-out frames: each frame is
/// routed by the decision model to its top-ranked specialist, whose
/// detections are scored against the truth. This is the fleet-facing metric
/// the canary gate compares — it exercises routing *and* detection, so a
/// regression in either shows up.
///
/// # Errors
///
/// Surfaces routing and inference errors from the substrates.
pub fn routed_validation_f1(
    system: &AnoleSystem,
    dataset: &DrivingDataset,
    refs: &[anole_data::FrameRef],
) -> Result<f32, AnoleError> {
    let threshold = system.config().detector.threshold;
    let mut counts = anole_detect::DetectionCounts::default();
    for &r in refs {
        let frame = dataset.frame(r);
        let top = system.decision().rank(&frame.features)?[0];
        let pred = system.repository().model(top).detect(&frame.features, threshold)?;
        counts.accumulate(&pred, &frame.truth);
    }
    Ok(counts.f1())
}

/// What [`staged_rollout`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RolloutOutcome {
    /// The candidate passed the canary gate and now serves the whole fleet.
    Promoted,
    /// The candidate regressed (measured or injected); the fleet stays on
    /// the last-good bundle and the canary cohort was re-served it.
    RolledBack,
}

/// Report of one staged rollout (see [`staged_rollout`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RolloutReport {
    /// Promotion or rollback.
    pub outcome: RolloutOutcome,
    /// Routed validation F1 of the candidate bundle.
    pub candidate_f1: f32,
    /// Routed validation F1 of the last-good bundle.
    pub last_good_f1: f32,
    /// Whether a [`FaultKind::RegressedUpdate`](crate::omi::FaultKind)
    /// fired for this candidate (silent regression the gate must catch).
    pub regression_injected: bool,
    /// Devices in the canary cohort.
    pub canary_devices: usize,
    /// Devices in the whole fleet.
    pub fleet_devices: usize,
    /// Deliveries that arrived stale and were retried.
    pub stale_deliveries: usize,
    /// Devices left serving sessions from the candidate bundle — the whole
    /// fleet on promotion, **zero** on rollback (the canary cohort only
    /// shadow-evaluates; no session is ever served from an unpromoted
    /// bundle).
    pub sessions_on_candidate: usize,
    /// Bundle downloads performed (canary + promotion or re-serve).
    pub downloads: usize,
    /// Wall-clock milliseconds spent downloading across the fleet.
    pub download_ms: f64,
    /// Page-severity SLO alerts fired during the lifecycle's SLO canary
    /// serving run (see `lifecycle::reprofile_and_rollout`); any page
    /// demotes a measured promotion to a rollback. Zero — and absent from
    /// serialized reports — when SLO gating is disabled.
    #[serde(default, skip_serializing_if = "usize_is_zero")]
    pub slo_canary_pages: usize,
}

/// `skip_serializing_if` helper keeping pre-SLO rollout reports
/// byte-identical.
#[allow(clippy::trivially_copy_pass_by_ref)]
fn usize_is_zero(v: &usize) -> bool {
    *v == 0
}

/// Delivers `manifest` to one device, retrying stale arrivals. Each attempt
/// that draws [`FaultKind::StaleBundle`](crate::omi::FaultKind) is discarded
/// before any bytes move (the device rejects the outdated manifest version);
/// fresh arrivals then pay the full resumable-download price.
fn deliver(
    manifest: &Manifest,
    seed: Seed,
    device: u64,
    injector: &mut Option<&mut FaultInjector>,
    max_sessions: usize,
    draw_stale: bool,
    report: &mut RolloutReport,
) -> Result<(), AnoleError> {
    let attempts = max_sessions.max(1);
    for _ in 0..attempts {
        if draw_stale && injector.as_deref_mut().is_some_and(FaultInjector::bundle_is_stale) {
            report.stale_deliveries += 1;
            anole_obs::counter_add!("omi.engine.drift.stale_bundles", 1);
            continue;
        }
        let mut link = UnstableLink::new(UnstableLinkConfig::default());
        let mut rng = rng_from_seed(split_seed(seed, device));
        let dl = download_resumable(
            manifest,
            &mut link,
            &mut rng,
            injector.as_deref_mut(),
            max_sessions,
        )?;
        report.downloads += 1;
        report.download_ms += dl.total_ms;
        return Ok(());
    }
    Err(deploy_err(format!(
        "device {device} still served a stale bundle after {attempts} delivery attempts"
    )))
}

/// Staged rollout of a re-profiled candidate with canary gating and
/// auto-rollback — the online half of the continual re-profiling loop.
///
/// The candidate is bundled to `candidate_dir` and delivered (over the
/// unstable uplink, with stale-bundle retries) to a canary cohort of
/// `⌈fleet · canary_fraction⌉` devices, which *shadow-evaluate* it: routed
/// validation F1 is measured on `dataset`'s validation split while every
/// live session keeps serving the last-good bundle from `last_good_dir`.
/// Promotion mirrors the quantization acceptance gate: the candidate is
/// promoted only when `candidate_f1 + epsilon_f1 ≥ last_good_f1` and no
/// [`FaultKind::RegressedUpdate`](crate::omi::FaultKind) fired. On
/// promotion the rest of the fleet downloads the candidate; on rollback the
/// canary cohort is re-served the last-good bundle and
/// `sessions_on_candidate` is zero — fleet-wide, no session was ever served
/// from the regressed bundle.
///
/// Deterministic for a fixed `(seed, injector plan)`: device download RNGs
/// are split per device index, so reports are bit-identical across runs.
///
/// # Errors
///
/// * [`AnoleError::Deploy`] for an empty fleet, bundle I/O failures, or a
///   device exhausting its stale-delivery retries.
/// * [`AnoleError::DownloadIncomplete`] when a download exhausts its
///   sessions.
#[allow(clippy::too_many_arguments)]
pub fn staged_rollout(
    candidate: &AnoleSystem,
    last_good_dir: &Path,
    candidate_dir: &Path,
    dataset: &DrivingDataset,
    fleet_devices: usize,
    rollout: &RolloutConfig,
    seed: Seed,
    mut injector: Option<&mut FaultInjector>,
) -> Result<RolloutReport, AnoleError> {
    let _span = anole_obs::span!("deploy.staged_rollout");
    if fleet_devices == 0 {
        return Err(deploy_err("staged rollout needs at least one device"));
    }
    let last_good = load_bundle(last_good_dir)?;
    let candidate_manifest = save_bundle(candidate, candidate_dir)?;
    let last_good_manifest = read_manifest(last_good_dir)?;
    let val = &dataset.split().val;
    let candidate_f1 = routed_validation_f1(candidate, dataset, val)?;
    let last_good_f1 = routed_validation_f1(&last_good, dataset, val)?;

    let canary = ((fleet_devices as f32 * rollout.canary_fraction).ceil() as usize)
        .clamp(1, fleet_devices);
    let mut report = RolloutReport {
        outcome: RolloutOutcome::RolledBack,
        candidate_f1,
        last_good_f1,
        regression_injected: false,
        canary_devices: canary,
        fleet_devices,
        stale_deliveries: 0,
        sessions_on_candidate: 0,
        downloads: 0,
        download_ms: 0.0,
        slo_canary_pages: 0,
    };

    // Canary phase: deliver the candidate to the cohort for shadow
    // evaluation. Sessions keep serving last-good until promotion.
    for d in 0..canary {
        deliver(
            &candidate_manifest,
            seed,
            1000 + d as u64,
            &mut injector,
            rollout.max_download_sessions,
            true,
            &mut report,
        )?;
    }
    report.regression_injected =
        injector.as_deref_mut().is_some_and(FaultInjector::update_regresses);

    let promote =
        !report.regression_injected && candidate_f1 + rollout.epsilon_f1 >= last_good_f1;
    if promote {
        // Fan out to the rest of the fleet; canary devices already hold the
        // bundle and just switch their sessions over.
        for d in canary..fleet_devices {
            deliver(
                &candidate_manifest,
                seed,
                1000 + d as u64,
                &mut injector,
                rollout.max_download_sessions,
                true,
                &mut report,
            )?;
        }
        report.outcome = RolloutOutcome::Promoted;
        report.sessions_on_candidate = fleet_devices;
        anole_obs::counter_add!("omi.engine.drift.promotions", 1);
    } else {
        // Auto-rollback: re-serve the pinned last-good bundle to the canary
        // cohort. Its manifest version is pinned, so no stale draws apply.
        for d in 0..canary {
            deliver(
                &last_good_manifest,
                seed,
                2000 + d as u64,
                &mut injector,
                rollout.max_download_sessions,
                false,
                &mut report,
            )?;
        }
        report.outcome = RolloutOutcome::RolledBack;
        report.sessions_on_candidate = 0;
        anole_obs::counter_add!("omi.engine.drift.rollbacks", 1);
    }
    anole_obs::gauge_set!(
        "omi.engine.drift.fleet_on_candidate",
        report.sessions_on_candidate as f64
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnoleConfig;
    use anole_data::{DatasetConfig, DrivingDataset};
    use anole_device::UnstableLinkConfig;
    use anole_tensor::{rng_from_seed, Seed};

    fn system() -> AnoleSystem {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(131));
        AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(132)).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("anole-bundle-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn bundle_round_trips() {
        let system = system();
        let dir = temp_dir("roundtrip");
        let manifest = save_bundle(&system, &dir).unwrap();
        assert_eq!(manifest.model_count, system.repository().len());
        // scene + decision + models + system.json
        assert_eq!(manifest.entries.len(), system.repository().len() + 3);
        let loaded = load_bundle(&dir).unwrap();
        assert_eq!(&loaded, &system);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let system = system();
        let dir = temp_dir("corrupt");
        save_bundle(&system, &dir).unwrap();
        let victim = dir.join("model_000.json");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&victim, bytes).unwrap();
        let err = load_bundle(&dir).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_fails_cleanly() {
        let dir = temp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_bundle(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transfer_size_matches_paper_scale() {
        let system = system();
        let dir = temp_dir("sizes");
        let manifest = save_bundle(&system, &dir).unwrap();
        let n = system.repository().len() as u64;
        let expected = ReferenceModel::Resnet18.weight_bytes()
            + ReferenceModel::DecisionMlp.weight_bytes()
            + n * ReferenceModel::Yolov3Tiny.weight_bytes();
        assert_eq!(manifest.total_transfer_bytes(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn download_simulation_completes_despite_outages() {
        let system = system();
        let dir = temp_dir("download");
        let manifest = save_bundle(&system, &dir).unwrap();
        let mut link = UnstableLink::new(UnstableLinkConfig::default());
        let mut rng = rng_from_seed(Seed(133));
        let report = simulate_download(&manifest, &mut link, &mut rng);
        assert!(report.total_ms > 0.0);
        let expected_chunks =
            manifest.entries.iter().map(|e| e.transfer_bytes.div_ceil(256 * 1024)).sum::<u64>();
        assert_eq!(report.chunks as u64, expected_chunks);
        // An unstable link makes retries overwhelmingly likely at this size.
        assert!(report.retries > 0, "no retries over {} chunks", report.chunks);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnv1a_is_stable_and_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"anole"), fnv1a(b"anolf"));
        assert_eq!(fnv1a(b"anole"), fnv1a(b"anole"));
    }

    #[test]
    fn resumable_download_matches_ideal_session_with_zero_faults() {
        let system = system();
        let dir = temp_dir("resume-eq");
        let manifest = save_bundle(&system, &dir).unwrap();
        let ideal = {
            let mut link = UnstableLink::new(UnstableLinkConfig::default());
            let mut rng = rng_from_seed(Seed(134));
            simulate_download(&manifest, &mut link, &mut rng)
        };
        let mut link = UnstableLink::new(UnstableLinkConfig::default());
        let mut rng = rng_from_seed(Seed(134));
        let report = download_resumable(&manifest, &mut link, &mut rng, None, 4).unwrap();
        assert_eq!(report.total_ms, ideal.total_ms);
        assert_eq!(report.chunks, ideal.chunks);
        assert_eq!(report.retries, ideal.retries);
        assert_eq!(report.sessions, 1);
        assert_eq!(report.link_deaths, 0);
        assert_eq!(report.wasted_bytes, 0);
        assert_eq!(report.transferred_bytes, report.payload_bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn link_death_retransfers_only_the_inflight_artifact() {
        use crate::omi::{FaultKind, FaultPlan};

        let system = system();
        let dir = temp_dir("resume-death");
        let manifest = save_bundle(&system, &dir).unwrap();
        let mut link = UnstableLink::new(UnstableLinkConfig::default());
        let mut rng = rng_from_seed(Seed(135));
        // Die a few chunk draws into the first artifact (it spans ~180
        // chunks, so draw 3 is mid-entry).
        let mut injector = FaultPlan::new(Seed(136)).at(3, FaultKind::LinkDeath).injector();
        let report =
            download_resumable(&manifest, &mut link, &mut rng, Some(&mut injector), 6).unwrap();
        assert_eq!(report.link_deaths, 1);
        assert_eq!(report.sessions, 2);
        assert!(report.backoff_ms > 0.0);
        // Only the in-flight artifact's partial progress was re-sent: at
        // most 3 chunks of waste, never the completed artifacts.
        assert_eq!(report.transferred_bytes, report.payload_bytes + report.wasted_bytes);
        assert!(report.wasted_bytes <= 3 * 256 * 1024, "wasted {}", report.wasted_bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_arrival_is_refetched_whole() {
        use crate::omi::{FaultKind, FaultPlan};

        let system = system();
        let dir = temp_dir("resume-corrupt");
        let manifest = save_bundle(&system, &dir).unwrap();
        let mut link = UnstableLink::new(UnstableLinkConfig::default());
        let mut rng = rng_from_seed(Seed(137));
        // The first artifact arrives checksum-corrupt once.
        let mut injector =
            FaultPlan::new(Seed(138)).at(0, FaultKind::TruncatedArtifact).injector();
        let report =
            download_resumable(&manifest, &mut link, &mut rng, Some(&mut injector), 6).unwrap();
        assert_eq!(report.corrupt_arrivals, 1);
        assert_eq!(report.sessions, 2);
        assert_eq!(report.wasted_bytes, manifest.entries[0].transfer_bytes);
        assert_eq!(report.transferred_bytes, report.payload_bytes + report.wasted_bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exhausted_sessions_report_missing_artifacts() {
        use crate::omi::FaultPlan;

        let system = system();
        let dir = temp_dir("resume-exhaust");
        let manifest = save_bundle(&system, &dir).unwrap();
        let mut link = UnstableLink::new(UnstableLinkConfig::default());
        let mut rng = rng_from_seed(Seed(139));
        // Every arrival corrupt: no artifact can ever verify.
        let mut injector =
            FaultPlan::new(Seed(140)).with_truncated_artifact_rate(1.0).injector();
        let err = download_resumable(&manifest, &mut link, &mut rng, Some(&mut injector), 2)
            .unwrap_err();
        assert_eq!(
            err,
            AnoleError::DownloadIncomplete { missing: manifest.entries.len(), attempts: 2 }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn rollout_fixture(tag: &str) -> (DrivingDataset, AnoleSystem, PathBuf, PathBuf) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(141));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(142)).unwrap();
        let last_good = temp_dir(&format!("{tag}-lastgood"));
        let candidate = temp_dir(&format!("{tag}-candidate"));
        save_bundle(&system, &last_good).unwrap();
        (dataset, system, last_good, candidate)
    }

    #[test]
    fn rollout_promotes_a_healthy_candidate_deterministically() {
        let (dataset, system, last_good, candidate_dir) = rollout_fixture("promote");
        let rollout = crate::RolloutConfig::default();
        let run = || {
            staged_rollout(
                &system,
                &last_good,
                &candidate_dir,
                &dataset,
                8,
                &rollout,
                Seed(143),
                None,
            )
            .unwrap()
        };
        let report = run();
        assert_eq!(report.outcome, RolloutOutcome::Promoted);
        assert_eq!(report.canary_devices, 2);
        assert_eq!(report.fleet_devices, 8);
        assert_eq!(report.sessions_on_candidate, 8);
        assert_eq!(report.downloads, 8);
        assert_eq!(report.stale_deliveries, 0);
        assert!(!report.regression_injected);
        // An identical candidate gates at equality: F1s match exactly.
        assert_eq!(report.candidate_f1, report.last_good_f1);
        assert!(report.download_ms > 0.0);
        assert_eq!(report, run());
        std::fs::remove_dir_all(&last_good).unwrap();
        std::fs::remove_dir_all(&candidate_dir).unwrap();
    }

    #[test]
    fn injected_regression_is_caught_at_canary_and_rolled_back() {
        use crate::omi::{FaultKind, FaultPlan};

        let (dataset, system, last_good, candidate_dir) = rollout_fixture("regress");
        let rollout = crate::RolloutConfig::default();
        let mut injector =
            FaultPlan::new(Seed(144)).at(0, FaultKind::RegressedUpdate).injector();
        let report = staged_rollout(
            &system,
            &last_good,
            &candidate_dir,
            &dataset,
            8,
            &rollout,
            Seed(145),
            Some(&mut injector),
        )
        .unwrap();
        assert_eq!(report.outcome, RolloutOutcome::RolledBack);
        assert!(report.regression_injected);
        // Zero sessions fleet-wide ever served the regressed bundle; the
        // canary cohort downloaded it for shadow evaluation, then was
        // re-served last-good.
        assert_eq!(report.sessions_on_candidate, 0);
        assert_eq!(report.downloads, report.canary_devices * 2);
        std::fs::remove_dir_all(&last_good).unwrap();
        std::fs::remove_dir_all(&candidate_dir).unwrap();
    }

    #[test]
    fn measured_regression_rolls_back_without_injection() {
        let (dataset, system, last_good, candidate_dir) = rollout_fixture("measured");
        let _ = system;
        // A candidate trained on a *different* world: same shapes, but its
        // specialists and router are tuned to foreign scene geometry, so its
        // routed F1 on this fleet's validation split collapses and the gate
        // must refuse it on measurement alone.
        let foreign = DrivingDataset::generate(&DatasetConfig::small(), Seed(146));
        let broken = AnoleSystem::train(&foreign, &AnoleConfig::fast(), Seed(142)).unwrap();
        let rollout = crate::RolloutConfig::default();
        let report = staged_rollout(
            &broken,
            &last_good,
            &candidate_dir,
            &dataset,
            4,
            &rollout,
            Seed(147),
            None,
        )
        .unwrap();
        assert_eq!(report.outcome, RolloutOutcome::RolledBack);
        assert!(!report.regression_injected);
        assert!(
            report.candidate_f1 + rollout.epsilon_f1 < report.last_good_f1,
            "candidate {:.3} vs last-good {:.3}",
            report.candidate_f1,
            report.last_good_f1
        );
        assert_eq!(report.sessions_on_candidate, 0);
        std::fs::remove_dir_all(&last_good).unwrap();
        std::fs::remove_dir_all(&candidate_dir).unwrap();
    }

    #[test]
    fn stale_deliveries_are_retried_until_fresh() {
        use crate::omi::{FaultKind, FaultPlan};

        let (dataset, system, last_good, candidate_dir) = rollout_fixture("stale");
        let rollout = crate::RolloutConfig::default();
        // The first two delivery draws arrive stale; retries then succeed.
        let mut injector = FaultPlan::new(Seed(148))
            .at(0, FaultKind::StaleBundle)
            .at(1, FaultKind::StaleBundle)
            .injector();
        let report = staged_rollout(
            &system,
            &last_good,
            &candidate_dir,
            &dataset,
            4,
            &rollout,
            Seed(149),
            Some(&mut injector),
        )
        .unwrap();
        assert_eq!(report.outcome, RolloutOutcome::Promoted);
        assert_eq!(report.stale_deliveries, 2);
        assert_eq!(report.downloads, 4);
        std::fs::remove_dir_all(&last_good).unwrap();
        std::fs::remove_dir_all(&candidate_dir).unwrap();
    }

    #[test]
    fn transition_sidecar_round_trips_and_is_optional() {
        let dir = temp_dir("transition");
        std::fs::create_dir_all(&dir).unwrap();
        // A bundle without the sidecar loads as None — pre-prefetch bundles
        // keep working unchanged.
        assert_eq!(load_transition_model(&dir, 4).unwrap(), None);

        let mut model = TransitionModel::new(4);
        for id in [0, 1, 2, 1, 2, 3, 0] {
            model.observe(id);
        }
        save_transition_model(&model, &dir).unwrap();
        let loaded = load_transition_model(&dir, 4).unwrap().unwrap();
        assert_eq!(loaded, model);
        // The sidecar never appears in the manifest, so existing bundle
        // layouts are untouched.
        assert!(!dir.join("manifest.json").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transition_sidecar_rejects_corruption_and_size_mismatch() {
        let dir = temp_dir("transition-corrupt");
        let mut model = TransitionModel::new(3);
        model.observe(0);
        model.observe(2);
        save_transition_model(&model, &dir).unwrap();

        // Wrong repository size is refused before any engine sees it.
        let err = load_transition_model(&dir, 7).unwrap_err();
        assert!(err.to_string().contains("transition model covers 3"));

        // A flipped byte inside the artifact fails the checksum.
        let path = dir.join(TRANSITION_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, bytes).unwrap();
        assert!(load_transition_model(&dir, 3).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
