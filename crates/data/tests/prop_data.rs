//! Property-based tests of the generative driving world and dataset
//! assembly.

use anole_data::{
    generate_drifted_clip, synthesize_fast_changing, ClipId, DatasetConfig, DatasetSource,
    DriftPhase, DriftSchedule, DrivingDataset, Location, SceneAttributes, SpliceConfig,
    TimeOfDay, Weather, WorldConfig,
};
use anole_tensor::Seed;
use proptest::prelude::*;

fn tiny_config(frames: usize, kitti: usize, bdd: usize, shd: usize) -> DatasetConfig {
    DatasetConfig {
        frames_per_clip: frames,
        kitti_clips: kitti,
        bdd_clips: bdd,
        shd_clips: shd,
        ..DatasetConfig::small()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Split fractions partition every seen clip's frames for any clip
    /// shape, and unseen hold-outs exist per source with clips present.
    #[test]
    fn split_partitions_for_any_shape(
        frames in 10usize..80,
        kitti in 1usize..4,
        bdd in 1usize..6,
        shd in 1usize..4,
        seed in 0u64..100,
    ) {
        let ds = DrivingDataset::generate(&tiny_config(frames, kitti, bdd, shd), Seed(seed));
        let split = ds.split();
        let seen_frames: usize = ds.clips().iter().filter(|c| c.seen).map(|c| c.len()).sum();
        prop_assert_eq!(
            split.train.len() + split.val.len() + split.test.len(),
            seen_frames
        );
        prop_assert!(!split.unseen_clips.is_empty());
        // Train refs precede val refs precede test refs within each clip.
        for r in &split.train {
            prop_assert!(r.frame < ds.test_range(r.clip).start);
        }
        for r in &split.test {
            prop_assert!(ds.test_range(r.clip).contains(&r.frame));
        }
    }

    /// Features matrices are exactly the frames' features, in order.
    #[test]
    fn matrices_mirror_frames(seed in 0u64..100) {
        let ds = DrivingDataset::generate(&tiny_config(20, 1, 2, 1), Seed(seed));
        let refs = ds.clip_frames(0);
        let x = ds.features_matrix(&refs);
        let y = ds.truth_matrix(&refs);
        for (i, &r) in refs.iter().enumerate() {
            let frame = ds.frame(r);
            prop_assert_eq!(x.row(i), frame.features.as_slice());
            for (j, &t) in frame.truth.iter().enumerate() {
                prop_assert_eq!(y.get(i, j) > 0.5, t);
            }
        }
    }

    /// Splicing only references frames that exist, preserves segment count,
    /// and is deterministic.
    #[test]
    fn splicing_is_well_formed(
        segments in 1usize..5,
        segment_len in 1usize..30,
        seed in 0u64..100,
    ) {
        let ds = DrivingDataset::generate(&tiny_config(40, 2, 3, 2), Seed(seed));
        let cfg = SpliceConfig { clip_count: 3, segments_per_clip: segments, segment_len };
        let a = synthesize_fast_changing(&ds, &cfg, Seed(seed + 1));
        let b = synthesize_fast_changing(&ds, &cfg, Seed(seed + 1));
        prop_assert_eq!(&a, &b);
        for clip in &a {
            prop_assert_eq!(clip.segment_sources.len(), segments.min(ds.clips().len()));
            for r in &clip.frames {
                prop_assert!(r.clip < ds.clips().len());
                prop_assert!(r.frame < ds.clips()[r.clip].len());
            }
        }
    }

    /// Zero drift is a byte-level no-op for any clip shape and seed: routing
    /// generation through the drift path with a stationary schedule yields a
    /// clip identical to the stationary generator's, so the drift subsystem
    /// can stay enabled without perturbing any fixed-seed result.
    #[test]
    fn stationary_schedule_is_byte_identical_for_any_clip(
        length in 4usize..60,
        density in 0.2f32..2.0,
        clip_seed in 0u64..100,
        schedule_seed in 0u64..100,
    ) {
        let ds = DrivingDataset::generate(&tiny_config(12, 1, 1, 1), Seed(5));
        let attrs = ds.clips()[0].attributes;
        let plain = ds.world().generate_clip(
            ClipId(900), DatasetSource::Bdd, attrs, length, density, Seed(clip_seed),
        );
        let stationary = generate_drifted_clip(
            ds.world(), ClipId(900), DatasetSource::Bdd, attrs, length, density,
            Seed(clip_seed), &DriftSchedule::stationary(Seed(schedule_seed)),
        );
        prop_assert_eq!(plain, stationary);
    }

    /// Drifted clips keep every generator contract for any phase mix:
    /// features stay tanh-bounded and finite, ground truth and frame count
    /// are untouched, and the pre-onset prefix is byte-identical.
    #[test]
    fn drifted_clips_keep_generator_contracts(
        onset in 2usize..30,
        strength in 0.0f32..2.0,
        noise in 0.0f32..1.0,
        seed in 0u64..100,
    ) {
        let ds = DrivingDataset::generate(&tiny_config(12, 1, 1, 1), Seed(7));
        let attrs = ds.clips()[0].attributes;
        let target = SceneAttributes::new(Weather::Snowy, Location::TollBooth, TimeOfDay::Night);
        let schedule = DriftSchedule::new(
            vec![
                DriftPhase::Abrupt { target, at: onset, strength },
                DriftPhase::SensorDegradation {
                    start: onset, end: onset + 20, min_gain: 0.3, noise_std: noise,
                },
            ],
            Seed(seed + 1),
        );
        let plain = ds.world().generate_clip(
            ClipId(901), DatasetSource::Shd, attrs, 40, 1.0, Seed(seed),
        );
        let drifted = generate_drifted_clip(
            ds.world(), ClipId(901), DatasetSource::Shd, attrs, 40, 1.0, Seed(seed), &schedule,
        );
        prop_assert_eq!(plain.frames.len(), drifted.frames.len());
        prop_assert_eq!(&plain.frames[..onset], &drifted.frames[..onset]);
        for (p, d) in plain.frames.iter().zip(drifted.frames.iter()) {
            prop_assert_eq!(&p.truth, &d.truth);
            prop_assert!(d.features.iter().all(|v| v.is_finite() && v.abs() <= 1.0));
        }
    }

    /// World configuration knobs stay within their contracts: features are
    /// tanh-bounded for any style strength and noise level.
    #[test]
    fn features_bounded_for_any_world(
        style in 0.0f32..2.0,
        noise in 0.0f32..1.0,
        mixing in 0.0f32..6.0,
        seed in 0u64..50,
    ) {
        let config = DatasetConfig {
            world: WorldConfig {
                style_strength: style,
                noise_std: noise,
                scene_mixing_strength: mixing,
                ..WorldConfig::default()
            },
            ..tiny_config(12, 1, 1, 1)
        };
        let ds = DrivingDataset::generate(&config, Seed(seed));
        for clip in ds.clips() {
            for frame in &clip.frames {
                prop_assert!(frame.features.iter().all(|v| v.is_finite() && v.abs() <= 1.0));
            }
        }
    }
}
