//! Property-based tests of the generative driving world and dataset
//! assembly.

use anole_data::{
    synthesize_fast_changing, DatasetConfig, DrivingDataset, SpliceConfig, WorldConfig,
};
use anole_tensor::Seed;
use proptest::prelude::*;

fn tiny_config(frames: usize, kitti: usize, bdd: usize, shd: usize) -> DatasetConfig {
    DatasetConfig {
        frames_per_clip: frames,
        kitti_clips: kitti,
        bdd_clips: bdd,
        shd_clips: shd,
        ..DatasetConfig::small()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Split fractions partition every seen clip's frames for any clip
    /// shape, and unseen hold-outs exist per source with clips present.
    #[test]
    fn split_partitions_for_any_shape(
        frames in 10usize..80,
        kitti in 1usize..4,
        bdd in 1usize..6,
        shd in 1usize..4,
        seed in 0u64..100,
    ) {
        let ds = DrivingDataset::generate(&tiny_config(frames, kitti, bdd, shd), Seed(seed));
        let split = ds.split();
        let seen_frames: usize = ds.clips().iter().filter(|c| c.seen).map(|c| c.len()).sum();
        prop_assert_eq!(
            split.train.len() + split.val.len() + split.test.len(),
            seen_frames
        );
        prop_assert!(!split.unseen_clips.is_empty());
        // Train refs precede val refs precede test refs within each clip.
        for r in &split.train {
            prop_assert!(r.frame < ds.test_range(r.clip).start);
        }
        for r in &split.test {
            prop_assert!(ds.test_range(r.clip).contains(&r.frame));
        }
    }

    /// Features matrices are exactly the frames' features, in order.
    #[test]
    fn matrices_mirror_frames(seed in 0u64..100) {
        let ds = DrivingDataset::generate(&tiny_config(20, 1, 2, 1), Seed(seed));
        let refs = ds.clip_frames(0);
        let x = ds.features_matrix(&refs);
        let y = ds.truth_matrix(&refs);
        for (i, &r) in refs.iter().enumerate() {
            let frame = ds.frame(r);
            prop_assert_eq!(x.row(i), frame.features.as_slice());
            for (j, &t) in frame.truth.iter().enumerate() {
                prop_assert_eq!(y.get(i, j) > 0.5, t);
            }
        }
    }

    /// Splicing only references frames that exist, preserves segment count,
    /// and is deterministic.
    #[test]
    fn splicing_is_well_formed(
        segments in 1usize..5,
        segment_len in 1usize..30,
        seed in 0u64..100,
    ) {
        let ds = DrivingDataset::generate(&tiny_config(40, 2, 3, 2), Seed(seed));
        let cfg = SpliceConfig { clip_count: 3, segments_per_clip: segments, segment_len };
        let a = synthesize_fast_changing(&ds, &cfg, Seed(seed + 1));
        let b = synthesize_fast_changing(&ds, &cfg, Seed(seed + 1));
        prop_assert_eq!(&a, &b);
        for clip in &a {
            prop_assert_eq!(clip.segment_sources.len(), segments.min(ds.clips().len()));
            for r in &clip.frames {
                prop_assert!(r.clip < ds.clips().len());
                prop_assert!(r.frame < ds.clips()[r.clip].len());
            }
        }
    }

    /// World configuration knobs stay within their contracts: features are
    /// tanh-bounded for any style strength and noise level.
    #[test]
    fn features_bounded_for_any_world(
        style in 0.0f32..2.0,
        noise in 0.0f32..1.0,
        mixing in 0.0f32..6.0,
        seed in 0u64..50,
    ) {
        let config = DatasetConfig {
            world: WorldConfig {
                style_strength: style,
                noise_std: noise,
                scene_mixing_strength: mixing,
                ..WorldConfig::default()
            },
            ..tiny_config(12, 1, 1, 1)
        };
        let ds = DrivingDataset::generate(&config, Seed(seed));
        for clip in ds.clips() {
            for frame in &clip.frames {
                prop_assert!(frame.features.iter().all(|v| v.is_finite() && v.abs() <= 1.0));
            }
        }
    }
}
