//! Semantic attributes of driving scenes (paper §IV-A1).
//!
//! The paper defines semantic scenes as combinations of fine-grained
//! attributes in three orthogonal dimensions: 5 weather values × 8 location
//! values × 3 time-of-day values = 120 semantic scenes.

use serde::{Deserialize, Serialize};

/// Weather condition of a clip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Weather {
    /// Clear skies.
    Clear,
    /// Overcast.
    Overcast,
    /// Rain.
    Rainy,
    /// Snow.
    Snowy,
    /// Fog.
    Foggy,
}

impl Weather {
    /// All weather values, in index order.
    pub const ALL: [Weather; 5] = [
        Weather::Clear,
        Weather::Overcast,
        Weather::Rainy,
        Weather::Snowy,
        Weather::Foggy,
    ];

    /// Stable index in `0..5`.
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|w| w == self).expect("member of ALL")
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Weather::Clear => "clear",
            Weather::Overcast => "overcast",
            Weather::Rainy => "rainy",
            Weather::Snowy => "snowy",
            Weather::Foggy => "foggy",
        }
    }
}

/// Road environment of a clip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Location {
    /// Limited-access highway.
    Highway,
    /// Dense urban street.
    Urban,
    /// Residential street.
    Residential,
    /// Parking lot.
    ParkingLot,
    /// Tunnel.
    Tunnel,
    /// Gas station.
    GasStation,
    /// Bridge.
    Bridge,
    /// Toll booth.
    TollBooth,
}

impl Location {
    /// All location values, in index order.
    pub const ALL: [Location; 8] = [
        Location::Highway,
        Location::Urban,
        Location::Residential,
        Location::ParkingLot,
        Location::Tunnel,
        Location::GasStation,
        Location::Bridge,
        Location::TollBooth,
    ];

    /// Stable index in `0..8`.
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|l| l == self).expect("member of ALL")
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Location::Highway => "highway",
            Location::Urban => "urban",
            Location::Residential => "residential",
            Location::ParkingLot => "parking lot",
            Location::Tunnel => "tunnel",
            Location::GasStation => "gas station",
            Location::Bridge => "bridge",
            Location::TollBooth => "toll booth",
        }
    }
}

/// Time of day of a clip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TimeOfDay {
    /// Full daylight.
    Daytime,
    /// Dawn or dusk.
    DawnDusk,
    /// Night.
    Night,
}

impl TimeOfDay {
    /// All time values, in index order.
    pub const ALL: [TimeOfDay; 3] = [TimeOfDay::Daytime, TimeOfDay::DawnDusk, TimeOfDay::Night];

    /// Stable index in `0..3`.
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|t| t == self).expect("member of ALL")
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            TimeOfDay::Daytime => "daytime",
            TimeOfDay::DawnDusk => "dawn/dusk",
            TimeOfDay::Night => "night",
        }
    }
}

/// Number of semantic scenes: 5 weather × 8 location × 3 time = 120.
pub const SEMANTIC_SCENE_COUNT: usize = Weather::ALL.len() * Location::ALL.len() * TimeOfDay::ALL.len();

/// The semantic attributes of a scene (one combination = one semantic scene).
///
/// # Examples
///
/// ```
/// use anole_data::{Location, SceneAttributes, TimeOfDay, Weather};
///
/// let scene = SceneAttributes::new(Weather::Rainy, Location::Highway, TimeOfDay::Night);
/// assert_eq!(SceneAttributes::from_scene_index(scene.scene_index()), scene);
/// assert_eq!(scene.to_string(), "rainy highway at night");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SceneAttributes {
    /// Weather dimension.
    pub weather: Weather,
    /// Location dimension.
    pub location: Location,
    /// Time-of-day dimension.
    pub time: TimeOfDay,
}

impl SceneAttributes {
    /// Bundles the three attribute dimensions.
    pub fn new(weather: Weather, location: Location, time: TimeOfDay) -> Self {
        Self {
            weather,
            location,
            time,
        }
    }

    /// The semantic scene index in `0..SEMANTIC_SCENE_COUNT`.
    pub fn scene_index(&self) -> usize {
        (self.weather.index() * Location::ALL.len() + self.location.index()) * TimeOfDay::ALL.len()
            + self.time.index()
    }

    /// Inverse of [`SceneAttributes::scene_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= SEMANTIC_SCENE_COUNT`.
    pub fn from_scene_index(index: usize) -> Self {
        assert!(index < SEMANTIC_SCENE_COUNT, "scene index out of range");
        let time = TimeOfDay::ALL[index % TimeOfDay::ALL.len()];
        let rest = index / TimeOfDay::ALL.len();
        let location = Location::ALL[rest % Location::ALL.len()];
        let weather = Weather::ALL[rest / Location::ALL.len()];
        Self {
            weather,
            location,
            time,
        }
    }

    /// Iterates over all 120 semantic scenes in index order.
    pub fn all() -> impl Iterator<Item = SceneAttributes> {
        (0..SEMANTIC_SCENE_COUNT).map(SceneAttributes::from_scene_index)
    }

    /// Number of attribute values shared with `other` (0–3), a crude
    /// semantic similarity used by tests and diagnostics.
    pub fn shared_attributes(&self, other: &SceneAttributes) -> usize {
        usize::from(self.weather == other.weather)
            + usize::from(self.location == other.location)
            + usize::from(self.time == other.time)
    }
}

impl std::fmt::Display for SceneAttributes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} at {}",
            self.weather.name(),
            self.location.name(),
            self.time.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_invertible() {
        let mut seen = [false; SEMANTIC_SCENE_COUNT];
        for w in Weather::ALL {
            for l in Location::ALL {
                for t in TimeOfDay::ALL {
                    let s = SceneAttributes::new(w, l, t);
                    let idx = s.scene_index();
                    assert!(idx < SEMANTIC_SCENE_COUNT);
                    assert!(!seen[idx], "duplicate index {idx}");
                    seen[idx] = true;
                    assert_eq!(SceneAttributes::from_scene_index(idx), s);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn all_iterates_every_scene_once() {
        let scenes: Vec<SceneAttributes> = SceneAttributes::all().collect();
        assert_eq!(scenes.len(), 120);
        for (i, s) in scenes.iter().enumerate() {
            assert_eq!(s.scene_index(), i);
        }
    }

    #[test]
    fn attribute_indices_match_all_order() {
        for (i, w) in Weather::ALL.iter().enumerate() {
            assert_eq!(w.index(), i);
        }
        for (i, l) in Location::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
        for (i, t) in TimeOfDay::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn shared_attributes_counts_matches() {
        let a = SceneAttributes::new(Weather::Clear, Location::Urban, TimeOfDay::Daytime);
        let b = SceneAttributes::new(Weather::Clear, Location::Urban, TimeOfDay::Night);
        let c = SceneAttributes::new(Weather::Foggy, Location::Tunnel, TimeOfDay::Night);
        assert_eq!(a.shared_attributes(&a), 3);
        assert_eq!(a.shared_attributes(&b), 2);
        assert_eq!(a.shared_attributes(&c), 0);
        assert_eq!(b.shared_attributes(&c), 1);
    }

    #[test]
    #[should_panic(expected = "scene index out of range")]
    fn from_scene_index_rejects_out_of_range() {
        let _ = SceneAttributes::from_scene_index(SEMANTIC_SCENE_COUNT);
    }

    #[test]
    fn display_is_readable() {
        let s = SceneAttributes::new(Weather::Snowy, Location::TollBooth, TimeOfDay::DawnDusk);
        assert_eq!(s.to_string(), "snowy toll booth at dawn/dusk");
    }
}
