//! Video clips and frames: temporally correlated generation.

use anole_tensor::{rng_from_seed, Matrix, Seed};
use rand::Rng;
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};

use crate::{DatasetSource, SceneAttributes, WorldModel};

/// Identifier of a clip within a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClipId(pub usize);

impl std::fmt::Display for ClipId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "clip#{}", self.0)
    }
}

/// Reference to a single frame: `(clip index, frame index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameRef {
    /// Index of the clip within the dataset.
    pub clip: usize,
    /// Index of the frame within the clip.
    pub frame: usize,
}

/// Photometric and object statistics of a frame (the quantities whose CDFs
/// the paper plots in Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameMeta {
    /// Image brightness, in `[0, 1]`.
    pub brightness: f32,
    /// Image contrast, in `[0, 1]`.
    pub contrast: f32,
    /// Number of visible foreground objects.
    pub object_count: usize,
    /// Total fraction of the image covered by objects, in `[0, 1]`.
    pub object_area: f32,
}

/// One generated frame: observed features, ground-truth occupancy, and
/// metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Observed feature vector (what models consume).
    pub features: Vec<f32>,
    /// Ground-truth cell occupancy (what detectors must predict).
    pub truth: Vec<bool>,
    /// Photometric / object statistics.
    pub meta: FrameMeta,
}

impl Frame {
    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.truth.iter().filter(|&&t| t).count()
    }
}

/// A generated video clip with fixed semantic attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoClip {
    /// Clip identifier.
    pub id: ClipId,
    /// Source dataset this clip belongs to.
    pub source: DatasetSource,
    /// Semantic attributes (constant over the clip, as in BDD100k).
    pub attributes: SceneAttributes,
    /// The frames, in temporal order.
    pub frames: Vec<Frame>,
    /// Whether the clip is in the *seen* (training) partition.
    pub seen: bool,
}

impl VideoClip {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the clip has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[derive(Debug, Clone, Copy)]
struct ObjectState {
    cell: usize,
    area: f32,
}

impl WorldModel {
    /// Generates one clip of `length` frames in scene `attrs`.
    ///
    /// `density` scales the scene's expected object count (datasets differ in
    /// how busy their footage is). Objects persist across frames with the
    /// configured probability and the observation noise is AR(1), so
    /// consecutive frames are correlated like real video.
    pub fn generate_clip(
        &self,
        id: ClipId,
        source: DatasetSource,
        attrs: SceneAttributes,
        length: usize,
        density: f32,
        seed: Seed,
    ) -> VideoClip {
        let cfg = *self.config();
        let style = self.scene_style(&attrs);
        let cells = cfg.grid.cells();
        let mut rng = rng_from_seed(seed);

        let clip_offset = Matrix::random_normal(1, cfg.feature_dim, cfg.clip_offset_std, &mut rng);
        let rate = (style.object_rate * density).max(0.05);
        let persistence = cfg.object_persistence;
        // Birth rate keeping the population at `rate` in equilibrium.
        let birth_rate = (rate * (1.0 - persistence)).max(1e-3);

        let mut objects: Vec<ObjectState> = Vec::new();
        // Start from the stationary distribution.
        let initial = Poisson::new(rate as f64).expect("positive rate").sample(&mut rng) as usize;
        for _ in 0..initial {
            objects.push(spawn_object(&style.spatial_prior, attrs, &mut rng));
        }

        let mut noise = Matrix::zeros(1, cfg.feature_dim);
        let mut photometric_jitter = 0.0f32;
        let mut frames = Vec::with_capacity(length);

        for _ in 0..length {
            // Object dynamics.
            objects.retain(|_| rng.gen::<f32>() < persistence);
            let births = Poisson::new(birth_rate as f64)
                .expect("positive rate")
                .sample(&mut rng) as usize;
            for _ in 0..births {
                objects.push(spawn_object(&style.spatial_prior, attrs, &mut rng));
            }

            // Photometrics with slow AR(1) jitter.
            photometric_jitter = 0.9 * photometric_jitter + 0.1 * sample_normal(&mut rng, 0.35);
            let brightness = (style.brightness + photometric_jitter * 0.3).clamp(0.02, 1.0);
            let contrast = (style.contrast + photometric_jitter * 0.15).clamp(0.02, 1.0);
            let gain = 0.35 + 0.65 * brightness.sqrt() * (0.4 + 0.6 * contrast);

            // Object encoding: per-cell evidence magnitude.
            let mut evidence = vec![0.0f32; cells];
            let mut truth = vec![false; cells];
            let mut total_area = 0.0f32;
            for obj in &objects {
                evidence[obj.cell] += (obj.area * 14.0).min(2.0);
                truth[obj.cell] = true;
                total_area += obj.area;
            }

            // Observed features.
            let rho = cfg.temporal_rho;
            let innovation = Matrix::random_normal(1, cfg.feature_dim, cfg.noise_std, &mut rng);
            noise = &noise.scale(rho) + &innovation.scale((1.0 - rho * rho).sqrt());

            let e = Matrix::row_vector(&evidence);
            let projected = e.matmul(&style.mixing).expect("cells match");
            let mut raw = projected.scale(gain);
            for (v, &s) in raw.as_mut_slice().iter_mut().zip(style.latent.iter()) {
                *v += s;
            }
            raw.axpy(1.0, &clip_offset).expect("same width");
            raw.axpy(1.0, &noise).expect("same width");
            let features: Vec<f32> = raw.iter().map(|&v| v.tanh()).collect();

            frames.push(Frame {
                features,
                truth,
                meta: FrameMeta {
                    brightness,
                    contrast,
                    object_count: objects.len(),
                    object_area: total_area.min(1.0),
                },
            });
        }

        VideoClip {
            id,
            source,
            attributes: attrs,
            frames,
            seen: true,
        }
    }
}

fn spawn_object<R: Rng + ?Sized>(
    prior: &[f32],
    attrs: SceneAttributes,
    rng: &mut R,
) -> ObjectState {
    // Sample a cell from the spatial prior.
    let mut target: f32 = rng.gen();
    let mut cell = prior.len() - 1;
    for (i, &p) in prior.iter().enumerate() {
        if target < p {
            cell = i;
            break;
        }
        target -= p;
    }
    // Object apparent size: highway traffic is distant (small), parking lots
    // are close-ups (large).
    let base = match attrs.location {
        crate::Location::Highway | crate::Location::Bridge => 0.015,
        crate::Location::ParkingLot | crate::Location::GasStation => 0.05,
        _ => 0.03,
    };
    let area = (base * (0.4 + 1.6 * rng.gen::<f32>())).min(0.25);
    ObjectState { cell, area }
}

fn sample_normal<R: Rng + ?Sized>(rng: &mut R, std: f32) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Location, TimeOfDay, Weather, WorldConfig};

    fn world() -> WorldModel {
        WorldModel::new(WorldConfig::default(), Seed(5))
    }

    fn gen(attrs: SceneAttributes, seed: Seed) -> VideoClip {
        world().generate_clip(ClipId(0), DatasetSource::Bdd100k, attrs, 120, 1.0, seed)
    }

    fn urban_day() -> SceneAttributes {
        SceneAttributes::new(Weather::Clear, Location::Urban, TimeOfDay::Daytime)
    }

    #[test]
    fn clip_has_requested_length_and_shapes() {
        let clip = gen(urban_day(), Seed(1));
        assert_eq!(clip.len(), 120);
        for f in &clip.frames {
            assert_eq!(f.features.len(), 32);
            assert_eq!(f.truth.len(), 16);
            assert!(f.features.iter().all(|v| v.is_finite() && v.abs() <= 1.0));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(gen(urban_day(), Seed(2)), gen(urban_day(), Seed(2)));
        assert_ne!(gen(urban_day(), Seed(2)), gen(urban_day(), Seed(3)));
    }

    #[test]
    fn truth_matches_meta_object_presence() {
        let clip = gen(urban_day(), Seed(4));
        for f in &clip.frames {
            if f.meta.object_count == 0 {
                assert_eq!(f.occupied_cells(), 0);
            } else {
                assert!(f.occupied_cells() >= 1);
                assert!(f.occupied_cells() <= f.meta.object_count);
                assert!(f.meta.object_area > 0.0);
            }
        }
    }

    #[test]
    fn urban_clips_are_busier_than_tunnel_clips() {
        let tunnel = SceneAttributes::new(Weather::Clear, Location::Tunnel, TimeOfDay::Daytime);
        let mean = |clip: &VideoClip| {
            clip.frames.iter().map(|f| f.meta.object_count as f32).sum::<f32>()
                / clip.len() as f32
        };
        let urban_mean = mean(&gen(urban_day(), Seed(6)));
        let tunnel_mean = mean(&gen(tunnel, Seed(7)));
        assert!(
            urban_mean > 1.5 * tunnel_mean,
            "urban {urban_mean} vs tunnel {tunnel_mean}"
        );
    }

    #[test]
    fn consecutive_frames_are_more_similar_than_distant_ones() {
        let clip = gen(urban_day(), Seed(8));
        let d = |a: &Frame, b: &Frame| anole_tensor::l2_distance(&a.features, &b.features);
        let mut adjacent = 0.0;
        let mut distant = 0.0;
        let n = clip.len();
        for i in 0..n - 1 {
            adjacent += d(&clip.frames[i], &clip.frames[i + 1]);
            distant += d(&clip.frames[i], &clip.frames[(i + n / 2) % n]);
        }
        assert!(
            adjacent < distant * 0.8,
            "adjacent {adjacent} vs distant {distant}"
        );
    }

    #[test]
    fn object_population_stays_near_scene_rate() {
        let clip = world().generate_clip(
            ClipId(1),
            DatasetSource::Bdd100k,
            urban_day(),
            600,
            1.0,
            Seed(9),
        );
        let rate = world().object_rate_of(&urban_day());
        let mean = clip.frames.iter().map(|f| f.meta.object_count as f32).sum::<f32>()
            / clip.len() as f32;
        assert!(
            (mean - rate).abs() < rate * 0.5,
            "population mean {mean} vs rate {rate}"
        );
    }

    #[test]
    fn density_scales_object_counts() {
        let sparse = world().generate_clip(
            ClipId(2),
            DatasetSource::Kitti,
            urban_day(),
            200,
            0.4,
            Seed(10),
        );
        let dense = world().generate_clip(
            ClipId(3),
            DatasetSource::Bdd100k,
            urban_day(),
            200,
            1.6,
            Seed(10),
        );
        let mean = |c: &VideoClip| {
            c.frames.iter().map(|f| f.meta.object_count as f32).sum::<f32>() / c.len() as f32
        };
        assert!(mean(&dense) > 2.0 * mean(&sparse));
    }

    #[test]
    fn night_frames_are_darker() {
        let night = SceneAttributes::new(Weather::Clear, Location::Urban, TimeOfDay::Night);
        let bright = |c: &VideoClip| {
            c.frames.iter().map(|f| f.meta.brightness).sum::<f32>() / c.len() as f32
        };
        assert!(bright(&gen(night, Seed(11))) < bright(&gen(urban_day(), Seed(11))) - 0.2);
    }

    #[test]
    fn frame_ref_and_clip_id_are_plain_data() {
        let r = FrameRef { clip: 3, frame: 14 };
        assert_eq!(r, FrameRef { clip: 3, frame: 14 });
        assert_eq!(ClipId(7).to_string(), "clip#7");
    }
}
