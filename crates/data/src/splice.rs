//! Fast-changing synthesized clips (paper §VI-C): splice random test-set
//! segments from several clips into one stream, T1–T6.

use anole_tensor::{rng_from_seed, Seed};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{DrivingDataset, FrameRef};

/// Parameters of the splicing procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpliceConfig {
    /// Number of synthesized clips to produce (paper: 6, T1–T6).
    pub clip_count: usize,
    /// Segments per synthesized clip (paper: 5).
    pub segments_per_clip: usize,
    /// Frames per segment (paper: 100; our clips are shorter, default 40).
    pub segment_len: usize,
}

impl Default for SpliceConfig {
    fn default() -> Self {
        Self {
            clip_count: 6,
            segments_per_clip: 5,
            segment_len: 40,
        }
    }
}

/// A synthesized fast-changing clip: an ordered list of frame references
/// cut from several source clips.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplicedClip {
    /// Name, `T1`…`Tn` as in the paper.
    pub name: String,
    /// Frames in playback order.
    pub frames: Vec<FrameRef>,
    /// Index of the source clip of each segment, in order.
    pub segment_sources: Vec<usize>,
}

impl SplicedClip {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the clip is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Synthesizes fast-changing clips per §VI-C: for each output clip, pick
/// `segments_per_clip` random clips; from each, cut a random window from its
/// *test* portion when the clip is seen (or anywhere when unseen), then
/// concatenate.
///
/// Segments shorter than requested are taken whole (small test ranges).
///
/// # Panics
///
/// Panics if the dataset has no clips or `segment_len == 0`.
pub fn synthesize_fast_changing(
    dataset: &DrivingDataset,
    config: &SpliceConfig,
    seed: Seed,
) -> Vec<SplicedClip> {
    assert!(!dataset.clips().is_empty(), "dataset has no clips");
    assert!(config.segment_len > 0, "segment_len must be positive");
    let mut rng = rng_from_seed(seed);
    let clip_indices: Vec<usize> = (0..dataset.clips().len()).collect();

    (0..config.clip_count)
        .map(|t| {
            let mut frames = Vec::new();
            let mut segment_sources = Vec::new();
            let mut pool = clip_indices.clone();
            pool.shuffle(&mut rng);
            for &ci in pool.iter().take(config.segments_per_clip) {
                let range = if dataset.clips()[ci].seen {
                    dataset.test_range(ci)
                } else {
                    0..dataset.clips()[ci].len()
                };
                let span = range.end - range.start;
                let len = config.segment_len.min(span);
                let start = if span > len {
                    range.start + rng.gen_range(0..span - len + 1)
                } else {
                    range.start
                };
                for frame in start..start + len {
                    frames.push(FrameRef { clip: ci, frame });
                }
                segment_sources.push(ci);
            }
            SplicedClip {
                name: format!("T{}", t + 1),
                frames,
                segment_sources,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetConfig;

    fn dataset() -> DrivingDataset {
        DrivingDataset::generate(&DatasetConfig::small(), Seed(77))
    }

    #[test]
    fn produces_named_clips_of_expected_length() {
        let ds = dataset();
        let cfg = SpliceConfig {
            clip_count: 6,
            segments_per_clip: 4,
            segment_len: 10,
        };
        let spliced = synthesize_fast_changing(&ds, &cfg, Seed(1));
        assert_eq!(spliced.len(), 6);
        assert_eq!(spliced[0].name, "T1");
        assert_eq!(spliced[5].name, "T6");
        for s in &spliced {
            assert_eq!(s.len(), 40);
            assert_eq!(s.segment_sources.len(), 4);
        }
    }

    #[test]
    fn segments_come_from_distinct_clips() {
        let ds = dataset();
        let spliced = synthesize_fast_changing(&ds, &SpliceConfig::default(), Seed(2));
        for s in &spliced {
            let mut sources = s.segment_sources.clone();
            sources.sort_unstable();
            sources.dedup();
            assert_eq!(sources.len(), s.segment_sources.len());
        }
    }

    #[test]
    fn seen_segments_stay_within_test_ranges() {
        let ds = dataset();
        let spliced = synthesize_fast_changing(&ds, &SpliceConfig::default(), Seed(3));
        for s in &spliced {
            for r in &s.frames {
                if ds.clips()[r.clip].seen {
                    let range = ds.test_range(r.clip);
                    assert!(range.contains(&r.frame), "{r:?} outside {range:?}");
                }
            }
        }
    }

    #[test]
    fn segments_are_contiguous_runs() {
        let ds = dataset();
        let cfg = SpliceConfig {
            clip_count: 1,
            segments_per_clip: 3,
            segment_len: 8,
        };
        let s = &synthesize_fast_changing(&ds, &cfg, Seed(4))[0];
        for seg in s.frames.chunks(8) {
            for w in seg.windows(2) {
                assert_eq!(w[0].clip, w[1].clip);
                assert_eq!(w[0].frame + 1, w[1].frame);
            }
        }
    }

    #[test]
    fn oversized_segment_len_is_clamped() {
        let ds = dataset();
        let cfg = SpliceConfig {
            clip_count: 1,
            segments_per_clip: 2,
            segment_len: 10_000,
        };
        let s = &synthesize_fast_changing(&ds, &cfg, Seed(5))[0];
        assert!(!s.is_empty());
        assert!(s.len() <= 2 * ds.config().frames_per_clip);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let a = synthesize_fast_changing(&ds, &SpliceConfig::default(), Seed(6));
        let b = synthesize_fast_changing(&ds, &SpliceConfig::default(), Seed(6));
        assert_eq!(a, b);
    }
}
