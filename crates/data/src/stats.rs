//! Dataset diversity statistics (paper Fig. 5).

use anole_tensor::{empirical_cdf, CdfPoint};
use serde::{Deserialize, Serialize};

use crate::DrivingDataset;

/// Empirical CDFs of per-frame statistics across the whole dataset, the
/// quantities Fig. 5 uses to argue the dataset is diverse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiversityReport {
    /// CDF of image brightness.
    pub brightness: Vec<CdfPoint>,
    /// CDF of image contrast.
    pub contrast: Vec<CdfPoint>,
    /// CDF of the number of objects per frame.
    pub object_count: Vec<CdfPoint>,
    /// CDF of the per-frame object area ratio.
    pub object_area: Vec<CdfPoint>,
}

impl DiversityReport {
    /// Value range (max − min) of a CDF, a scalar diversity measure.
    pub fn spread(cdf: &[CdfPoint]) -> f32 {
        match (cdf.first(), cdf.last()) {
            (Some(a), Some(b)) => b.value - a.value,
            _ => 0.0,
        }
    }
}

/// Computes the Fig. 5 CDFs at `steps` quantiles over every frame of the
/// dataset.
pub fn dataset_diversity(dataset: &DrivingDataset, steps: usize) -> DiversityReport {
    let mut brightness = Vec::with_capacity(dataset.frame_count());
    let mut contrast = Vec::with_capacity(dataset.frame_count());
    let mut object_count = Vec::with_capacity(dataset.frame_count());
    let mut object_area = Vec::with_capacity(dataset.frame_count());
    for clip in dataset.clips() {
        for frame in &clip.frames {
            brightness.push(frame.meta.brightness);
            contrast.push(frame.meta.contrast);
            object_count.push(frame.meta.object_count as f32);
            object_area.push(frame.meta.object_area);
        }
    }
    DiversityReport {
        brightness: empirical_cdf(&brightness, steps),
        contrast: empirical_cdf(&contrast, steps),
        object_count: empirical_cdf(&object_count, steps),
        object_area: empirical_cdf(&object_area, steps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetConfig;
    use anole_tensor::Seed;

    #[test]
    fn report_shows_diversity() {
        let ds = DrivingDataset::generate(&DatasetConfig::small(), Seed(13));
        let report = dataset_diversity(&ds, 20);
        assert_eq!(report.brightness.len(), 20);
        // Brightness must span day vs night scenes.
        assert!(DiversityReport::spread(&report.brightness) > 0.2);
        assert!(DiversityReport::spread(&report.contrast) > 0.1);
        assert!(DiversityReport::spread(&report.object_count) >= 3.0);
        assert!(DiversityReport::spread(&report.object_area) > 0.03);
        // CDFs are in sane ranges.
        assert!(report.brightness.iter().all(|p| (0.0..=1.0).contains(&p.value)));
        assert!(report.object_area.iter().all(|p| (0.0..=1.0).contains(&p.value)));
    }

    #[test]
    fn spread_of_empty_cdf_is_zero() {
        assert_eq!(DiversityReport::spread(&[]), 0.0);
    }
}
