//! Dataset assembly: source profiles (KITTI / BDD100k / SHD analogues),
//! seen/unseen partitioning, and 6:2:2 frame splits (paper §VI-A1).

use anole_tensor::{rng_from_seed, split_seed, Matrix, Seed};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{
    ClipId, Frame, FrameRef, Location, SceneAttributes, TimeOfDay, VideoClip, Weather,
    WorldConfig, WorldModel,
};

/// The source dataset a clip mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DatasetSource {
    /// KITTI: Karlsruhe, clear/overcast daytime, moderate traffic.
    Kitti,
    /// BDD100k: New York / Bay Area, highly diverse, dense traffic.
    Bdd100k,
    /// SHD: Shanghai dashcam; highways, tunnels, day and night.
    Shd,
}

impl DatasetSource {
    /// All sources in display order.
    pub const ALL: [DatasetSource; 3] =
        [DatasetSource::Kitti, DatasetSource::Bdd100k, DatasetSource::Shd];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSource::Kitti => "KITTI",
            DatasetSource::Bdd100k => "BDD100k",
            DatasetSource::Shd => "SHD",
        }
    }
}

impl std::fmt::Display for DatasetSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Attribute distribution and density of one source dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceProfile {
    /// Which source this profiles.
    pub source: DatasetSource,
    /// Object-density multiplier relative to the world's scene rates.
    pub density: f32,
    weather_weights: Vec<f32>,
    location_weights: Vec<f32>,
    time_weights: Vec<f32>,
}

impl SourceProfile {
    /// The built-in profile of a source.
    pub fn of(source: DatasetSource) -> Self {
        match source {
            DatasetSource::Kitti => Self {
                source,
                density: 0.7,
                weather_weights: vec![0.6, 0.4, 0.0, 0.0, 0.0],
                location_weights: vec![0.30, 0.35, 0.35, 0.0, 0.0, 0.0, 0.0, 0.0],
                time_weights: vec![1.0, 0.0, 0.0],
            },
            DatasetSource::Bdd100k => Self {
                source,
                density: 1.3,
                weather_weights: vec![0.40, 0.20, 0.20, 0.10, 0.10],
                location_weights: vec![0.20, 0.40, 0.15, 0.05, 0.05, 0.05, 0.05, 0.05],
                time_weights: vec![0.50, 0.20, 0.30],
            },
            DatasetSource::Shd => Self {
                source,
                density: 1.0,
                weather_weights: vec![0.5, 0.3, 0.2, 0.0, 0.0],
                location_weights: vec![0.40, 0.30, 0.0, 0.0, 0.20, 0.0, 0.10, 0.0],
                time_weights: vec![0.50, 0.10, 0.40],
            },
        }
    }

    /// Samples clip attributes according to this source's distribution.
    pub fn sample_attributes<R: Rng + ?Sized>(&self, rng: &mut R) -> SceneAttributes {
        SceneAttributes::new(
            Weather::ALL[weighted_choice(&self.weather_weights, rng)],
            Location::ALL[weighted_choice(&self.location_weights, rng)],
            TimeOfDay::ALL[weighted_choice(&self.time_weights, rng)],
        )
    }
}

fn weighted_choice<R: Rng + ?Sized>(weights: &[f32], rng: &mut R) -> usize {
    let total: f32 = weights.iter().sum();
    let mut target = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

/// Configuration of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// The generative world parameters.
    pub world: WorldConfig,
    /// Frames per clip.
    pub frames_per_clip: usize,
    /// Number of KITTI-like clips.
    pub kitti_clips: usize,
    /// Number of BDD100k-like clips.
    pub bdd_clips: usize,
    /// Number of SHD-like clips.
    pub shd_clips: usize,
    /// Fraction of each clip's frames used for training (paper: 0.6).
    pub train_fraction: f32,
    /// Fraction used for validation (paper: 0.2; the rest is test).
    pub val_fraction: f32,
    /// Fraction of clips held out as unseen scenes (paper: 0.1).
    pub unseen_fraction: f32,
}

impl Default for DatasetConfig {
    /// The paper's dataset shape: 10 + 44 + 10 = 64 clips, ~16k frames.
    fn default() -> Self {
        Self {
            world: WorldConfig::default(),
            frames_per_clip: 250,
            kitti_clips: 10,
            bdd_clips: 44,
            shd_clips: 10,
            train_fraction: 0.6,
            val_fraction: 0.2,
            unseen_fraction: 0.1,
        }
    }
}

impl DatasetConfig {
    /// A reduced dataset for fast unit tests.
    pub fn small() -> Self {
        Self {
            frames_per_clip: 60,
            kitti_clips: 3,
            bdd_clips: 6,
            shd_clips: 3,
            ..Self::default()
        }
    }

    /// Total clip count.
    pub fn total_clips(&self) -> usize {
        self.kitti_clips + self.bdd_clips + self.shd_clips
    }
}

/// Frame-level split of the seen clips plus the held-out unseen clips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSplit {
    /// Training frames (first 60% of every seen clip).
    pub train: Vec<FrameRef>,
    /// Validation frames (next 20%).
    pub val: Vec<FrameRef>,
    /// Test frames (final 20%).
    pub test: Vec<FrameRef>,
    /// Indices of clips held out entirely (new-scene experiments).
    pub unseen_clips: Vec<usize>,
}

#[derive(Serialize, Deserialize)]
struct DatasetMeta {
    config: DatasetConfig,
    seed: Seed,
}

/// Error returned by dataset persistence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetIoError {
    detail: String,
}

impl DatasetIoError {
    fn from_display(detail: impl std::fmt::Display) -> Self {
        Self {
            detail: detail.to_string(),
        }
    }
}

impl std::fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dataset persistence error: {}", self.detail)
    }
}

impl std::error::Error for DatasetIoError {}

/// A fully generated driving dataset.
#[derive(Debug, Clone)]
pub struct DrivingDataset {
    clips: Vec<VideoClip>,
    config: DatasetConfig,
    world: WorldModel,
    seed: Seed,
}

impl DrivingDataset {
    /// Generates the dataset: builds the world, samples per-source clips,
    /// and marks each source's unseen hold-outs.
    pub fn generate(config: &DatasetConfig, seed: Seed) -> Self {
        let world = WorldModel::new(config.world, split_seed(seed, 0));
        let mut clips = Vec::with_capacity(config.total_clips());
        let mut rng = rng_from_seed(split_seed(seed, 1));

        let plan = [
            (DatasetSource::Kitti, config.kitti_clips),
            (DatasetSource::Bdd100k, config.bdd_clips),
            (DatasetSource::Shd, config.shd_clips),
        ];
        for (source, count) in plan {
            let profile = SourceProfile::of(source);
            let mut source_indices = Vec::with_capacity(count);
            for _ in 0..count {
                let id = ClipId(clips.len());
                let attrs = profile.sample_attributes(&mut rng);
                let clip_seed = split_seed(seed, 1000 + clips.len() as u64);
                let clip = world.generate_clip(
                    id,
                    source,
                    attrs,
                    config.frames_per_clip,
                    profile.density,
                    clip_seed,
                );
                source_indices.push(clips.len());
                clips.push(clip);
            }
            // Hold out ~unseen_fraction of this source's clips (at least 1).
            let n_unseen = ((count as f32 * config.unseen_fraction).round() as usize)
                .max(usize::from(count > 0));
            source_indices.shuffle(&mut rng);
            for &idx in source_indices.iter().take(n_unseen) {
                clips[idx].seen = false;
            }
        }

        Self {
            clips,
            config: *config,
            world,
            seed,
        }
    }

    /// Rebuilds a dataset from persisted parts: the same `(config, seed)`
    /// pair regenerates the identical world; `clips` may be the generated
    /// set or a curated subset.
    ///
    /// Used by [`DrivingDataset::load_from_dir`].
    pub fn from_parts(config: DatasetConfig, seed: Seed, clips: Vec<VideoClip>) -> Self {
        let world = WorldModel::new(config.world, split_seed(seed, 0));
        Self {
            clips,
            config,
            world,
            seed,
        }
    }

    /// The seed the dataset was generated with.
    pub fn seed(&self) -> Seed {
        self.seed
    }

    /// Persists the dataset to a directory: `dataset.json` (config + seed)
    /// plus `clips.anol` (the compact binary codec).
    ///
    /// # Errors
    ///
    /// Surfaces filesystem and serialization failures.
    pub fn save_to_dir(&self, dir: &std::path::Path) -> Result<(), DatasetIoError> {
        std::fs::create_dir_all(dir).map_err(DatasetIoError::from_display)?;
        let meta = DatasetMeta {
            config: self.config,
            seed: self.seed,
        };
        let json = serde_json::to_string_pretty(&meta).map_err(DatasetIoError::from_display)?;
        std::fs::write(dir.join("dataset.json"), json).map_err(DatasetIoError::from_display)?;
        std::fs::write(dir.join("clips.anol"), crate::encode_clips(&self.clips))
            .map_err(DatasetIoError::from_display)?;
        Ok(())
    }

    /// Loads a dataset persisted with [`DrivingDataset::save_to_dir`]. The
    /// world model is regenerated from the stored `(config, seed)` pair, so
    /// fresh-clip generation (real-world runs, fleet lifecycles) behaves
    /// identically to the original instance.
    ///
    /// # Errors
    ///
    /// Surfaces filesystem, JSON, and codec failures.
    pub fn load_from_dir(dir: &std::path::Path) -> Result<Self, DatasetIoError> {
        let json = std::fs::read_to_string(dir.join("dataset.json"))
            .map_err(DatasetIoError::from_display)?;
        let meta: DatasetMeta =
            serde_json::from_str(&json).map_err(DatasetIoError::from_display)?;
        let bytes =
            std::fs::read(dir.join("clips.anol")).map_err(DatasetIoError::from_display)?;
        let clips = crate::decode_clips(&bytes).map_err(DatasetIoError::from_display)?;
        Ok(Self::from_parts(meta.config, meta.seed, clips))
    }

    /// The generated clips, in id order.
    pub fn clips(&self) -> &[VideoClip] {
        &self.clips
    }

    /// The generating world (used by experiments that need fresh clips from
    /// the same world, e.g. the real-world UAV runs).
    pub fn world(&self) -> &WorldModel {
        &self.world
    }

    /// The configuration the dataset was generated from.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Total number of frames across all clips.
    pub fn frame_count(&self) -> usize {
        self.clips.iter().map(VideoClip::len).sum()
    }

    /// Borrows a frame by reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of bounds.
    pub fn frame(&self, r: FrameRef) -> &Frame {
        &self.clips[r.clip].frames[r.frame]
    }

    /// The 6:2:2 split over seen clips plus the unseen clip list.
    pub fn split(&self) -> DatasetSplit {
        let mut split = DatasetSplit {
            train: Vec::new(),
            val: Vec::new(),
            test: Vec::new(),
            unseen_clips: Vec::new(),
        };
        for (ci, clip) in self.clips.iter().enumerate() {
            if !clip.seen {
                split.unseen_clips.push(ci);
                continue;
            }
            let (train_end, val_end) = self.split_points(clip.len());
            for fi in 0..clip.len() {
                let r = FrameRef { clip: ci, frame: fi };
                if fi < train_end {
                    split.train.push(r);
                } else if fi < val_end {
                    split.val.push(r);
                } else {
                    split.test.push(r);
                }
            }
        }
        split
    }

    /// Frame-index range of a seen clip's test portion.
    ///
    /// # Panics
    ///
    /// Panics if `clip` is out of bounds.
    pub fn test_range(&self, clip: usize) -> std::ops::Range<usize> {
        let len = self.clips[clip].len();
        let (_, val_end) = self.split_points(len);
        val_end..len
    }

    fn split_points(&self, len: usize) -> (usize, usize) {
        let train_end = (len as f32 * self.config.train_fraction).floor() as usize;
        let val_end =
            (len as f32 * (self.config.train_fraction + self.config.val_fraction)).floor() as usize;
        (train_end.min(len), val_end.min(len))
    }

    /// Stacks the referenced frames' features into a matrix (one row each).
    pub fn features_matrix(&self, refs: &[FrameRef]) -> Matrix {
        let d = self.config.world.feature_dim;
        let mut m = Matrix::zeros(refs.len(), d);
        for (i, &r) in refs.iter().enumerate() {
            m.row_mut(i).copy_from_slice(&self.frame(r).features);
        }
        m
    }

    /// Stacks the referenced frames' ground truth into a 0/1 matrix.
    pub fn truth_matrix(&self, refs: &[FrameRef]) -> Matrix {
        let cells = self.config.world.grid.cells();
        let mut m = Matrix::zeros(refs.len(), cells);
        for (i, &r) in refs.iter().enumerate() {
            for (j, &t) in self.frame(r).truth.iter().enumerate() {
                if t {
                    m.set(i, j, 1.0);
                }
            }
        }
        m
    }

    /// Semantic scene index of each referenced frame (the clip's attributes).
    pub fn scene_indices(&self, refs: &[FrameRef]) -> Vec<usize> {
        refs.iter()
            .map(|r| self.clips[r.clip].attributes.scene_index())
            .collect()
    }

    /// All frame references of one clip, in order.
    pub fn clip_frames(&self, clip: usize) -> Vec<FrameRef> {
        (0..self.clips[clip].len())
            .map(|frame| FrameRef { clip, frame })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> DrivingDataset {
        DrivingDataset::generate(&DatasetConfig::small(), Seed(21))
    }

    #[test]
    fn generates_requested_clip_counts() {
        let ds = dataset();
        let cfg = DatasetConfig::small();
        assert_eq!(ds.clips().len(), cfg.total_clips());
        let kitti = ds.clips().iter().filter(|c| c.source == DatasetSource::Kitti).count();
        assert_eq!(kitti, cfg.kitti_clips);
        assert_eq!(ds.frame_count(), cfg.total_clips() * cfg.frames_per_clip);
    }

    #[test]
    fn each_source_has_an_unseen_clip() {
        let ds = dataset();
        for source in DatasetSource::ALL {
            assert!(
                ds.clips().iter().any(|c| c.source == source && !c.seen),
                "{source} lacks an unseen clip"
            );
        }
    }

    #[test]
    fn split_covers_every_frame_exactly_once() {
        let ds = dataset();
        let split = ds.split();
        let seen_frames: usize = ds.clips().iter().filter(|c| c.seen).map(VideoClip::len).sum();
        assert_eq!(split.train.len() + split.val.len() + split.test.len(), seen_frames);
        // 6:2:2 ratio within each clip.
        let len = ds.config().frames_per_clip as f32;
        let per_clip_train = (len * 0.6).floor() as usize;
        let seen_clips = ds.clips().iter().filter(|c| c.seen).count();
        assert_eq!(split.train.len(), per_clip_train * seen_clips);
        // No overlap.
        use std::collections::HashSet;
        let mut all: HashSet<FrameRef> = HashSet::new();
        for r in split.train.iter().chain(&split.val).chain(&split.test) {
            assert!(all.insert(*r), "duplicate frame ref {r:?}");
        }
    }

    #[test]
    fn unseen_clips_never_appear_in_split() {
        let ds = dataset();
        let split = ds.split();
        for r in split.train.iter().chain(&split.val).chain(&split.test) {
            assert!(ds.clips()[r.clip].seen);
        }
        for &u in &split.unseen_clips {
            assert!(!ds.clips()[u].seen);
        }
    }

    #[test]
    fn test_range_is_final_fifth() {
        let ds = dataset();
        let range = ds.test_range(0);
        let len = ds.clips()[0].len();
        assert_eq!(range.end, len);
        assert_eq!(range.start, (len as f32 * 0.8).floor() as usize);
    }

    #[test]
    fn matrices_match_frames() {
        let ds = dataset();
        let refs = ds.clip_frames(0);
        let x = ds.features_matrix(&refs);
        let y = ds.truth_matrix(&refs);
        assert_eq!(x.rows(), refs.len());
        assert_eq!(x.cols(), ds.config().world.feature_dim);
        assert_eq!(y.cols(), ds.config().world.grid.cells());
        let f0 = ds.frame(refs[0]);
        assert_eq!(x.row(0), f0.features.as_slice());
        for (j, &t) in f0.truth.iter().enumerate() {
            assert_eq!(y.get(0, j) > 0.5, t);
        }
    }

    #[test]
    fn scene_indices_come_from_clip_attributes() {
        let ds = dataset();
        let refs = ds.clip_frames(2);
        let idx = ds.scene_indices(&refs);
        assert!(idx.iter().all(|&i| i == ds.clips()[2].attributes.scene_index()));
    }

    #[test]
    fn kitti_profile_is_daytime_only() {
        let ds = DrivingDataset::generate(
            &DatasetConfig {
                kitti_clips: 12,
                bdd_clips: 0,
                shd_clips: 0,
                ..DatasetConfig::small()
            },
            Seed(33),
        );
        for clip in ds.clips() {
            assert_eq!(clip.attributes.time, TimeOfDay::Daytime);
            assert!(matches!(clip.attributes.weather, Weather::Clear | Weather::Overcast));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DrivingDataset::generate(&DatasetConfig::small(), Seed(55));
        let b = DrivingDataset::generate(&DatasetConfig::small(), Seed(55));
        assert_eq!(a.clips(), b.clips());
    }

    #[test]
    fn save_and_load_round_trip() {
        let original = DrivingDataset::generate(&DatasetConfig::small(), Seed(77));
        let dir = std::env::temp_dir().join(format!("anole-ds-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        original.save_to_dir(&dir).unwrap();
        let loaded = DrivingDataset::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.clips(), original.clips());
        assert_eq!(loaded.config(), original.config());
        assert_eq!(loaded.seed(), original.seed());
        // The regenerated world is the same world: fresh clips match.
        let attrs = original.clips()[0].attributes;
        let a = original
            .world()
            .generate_clip(ClipId(999), DatasetSource::Shd, attrs, 10, 1.0, Seed(1));
        let b = loaded
            .world()
            .generate_clip(ClipId(999), DatasetSource::Shd, attrs, 10, 1.0, Seed(1));
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_from_missing_dir_fails_cleanly() {
        let err =
            DrivingDataset::load_from_dir(std::path::Path::new("/nonexistent/anole")).unwrap_err();
        assert!(err.to_string().contains("dataset persistence error"));
    }

    #[test]
    fn bdd_is_denser_than_kitti() {
        let ds = DrivingDataset::generate(
            &DatasetConfig {
                kitti_clips: 6,
                bdd_clips: 6,
                shd_clips: 0,
                ..DatasetConfig::small()
            },
            Seed(60),
        );
        let mean_count = |source: DatasetSource| {
            let (sum, n) = ds
                .clips()
                .iter()
                .filter(|c| c.source == source)
                .flat_map(|c| c.frames.iter())
                .fold((0.0f32, 0usize), |(s, n), f| (s + f.meta.object_count as f32, n + 1));
            sum / n as f32
        };
        assert!(mean_count(DatasetSource::Bdd100k) > mean_count(DatasetSource::Kitti));
    }
}
