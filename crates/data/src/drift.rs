//! Non-stationary drift worlds: seeded drift schedules layered over the
//! stationary generator.
//!
//! The source paper trains the scene hierarchy once and leaves distribution
//! shift to future work; this module makes shift a first-class, reproducible
//! experimental condition. A [`DriftSchedule`] is a list of drift phases
//! applied as a *deterministic post-transform* over a clip produced by the
//! unmodified [`WorldModel::generate_clip`] path. The stationary RNG stream
//! is never touched: an empty schedule (and any frame outside every phase)
//! leaves the generated frames **byte-identical** to the stationary world,
//! which is what lets the drift subsystem stay enabled in production
//! pipelines without perturbing existing fixed-seed results.
//!
//! Four drift families are modelled, mirroring how deployed dashcam
//! distributions actually move:
//!
//! * [`DriftPhase::Gradual`] — covariate drift: features blend linearly
//!   toward a target scene's latent style over a frame window (season
//!   change, slow weather fronts);
//! * [`DriftPhase::Abrupt`] — a regime switch: the full shift lands at one
//!   frame (entering a tunnel, a storm breaking);
//! * [`DriftPhase::NovelScene`] — an attribute combination absent from the
//!   training distribution appears mid-stream and persists (paper §II
//!   case 3);
//! * [`DriftPhase::SensorDegradation`] — the sensor itself decays: signal
//!   gain ramps down toward a floor while seeded read-out noise ramps up
//!   (lens fouling, failing AGC).
//!
//! All drift transforms operate in pre-`tanh` space, so drifted features
//! keep the stationary invariant `|v| <= 1`. Ground-truth occupancy is
//! never altered — drift moves `P(x)`, not `P(y)`, which is exactly the
//! condition under which a frozen specialist repository degrades.

use anole_tensor::{rng_from_seed, Seed};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{ClipId, DatasetSource, SceneAttributes, VideoClip, WorldModel};

/// One phase of a drift schedule. Frame indices are relative to the clip
/// the schedule is applied to; phases may overlap (effects compose
/// additively in pre-activation space).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DriftPhase {
    /// Gradual covariate drift: between `start` and `end` the frame's
    /// style blends linearly from the clip's own scene toward `target`'s,
    /// reaching `strength` (1.0 = fully the target style) at `end` and
    /// holding it afterwards.
    Gradual {
        /// Scene whose style the stream drifts toward.
        target: SceneAttributes,
        /// First frame at which any shift is visible.
        start: usize,
        /// Frame at which the shift reaches full `strength`.
        end: usize,
        /// Fraction of the style delta applied at `end` (clamped to `[0, 2]`).
        strength: f32,
    },
    /// Abrupt regime switch: from frame `at` onward the full `strength`
    /// shift toward `target` is applied.
    Abrupt {
        /// Scene whose style the stream switches to.
        target: SceneAttributes,
        /// Switch frame.
        at: usize,
        /// Fraction of the style delta applied (clamped to `[0, 2]`).
        strength: f32,
    },
    /// A novel attribute combination appears at frame `at` and persists.
    /// Mechanically an abrupt switch; kept as its own variant so schedules
    /// document *why* the target scene is interesting (it is absent from
    /// the training distribution).
    NovelScene {
        /// The unseen scene that appears mid-stream.
        target: SceneAttributes,
        /// First frame of the novel regime.
        at: usize,
        /// Fraction of the style delta applied (clamped to `[0, 2]`).
        strength: f32,
    },
    /// Sensor degradation: between `start` and `end` the signal gain decays
    /// linearly from 1.0 to `min_gain` and additive read-out noise ramps
    /// from 0 to `noise_std`; both hold at their terminal values afterwards.
    SensorDegradation {
        /// First degraded frame.
        start: usize,
        /// Frame at which degradation bottoms out.
        end: usize,
        /// Terminal signal gain (clamped to `[0.05, 1]`).
        min_gain: f32,
        /// Terminal standard deviation of additive sensor noise.
        noise_std: f32,
    },
}

impl DriftPhase {
    /// Progress of this phase at `frame`: 0 before it starts, 1 once it has
    /// fully landed, linear in between.
    pub fn progress(&self, frame: usize) -> f32 {
        let (start, end) = match *self {
            DriftPhase::Gradual { start, end, .. } => (start, end),
            DriftPhase::Abrupt { at, .. } | DriftPhase::NovelScene { at, .. } => (at, at),
            DriftPhase::SensorDegradation { start, end, .. } => (start, end),
        };
        if frame < start {
            0.0
        } else if frame >= end {
            1.0
        } else {
            (frame - start) as f32 / (end - start) as f32
        }
    }

    /// First frame at which the phase has any effect.
    pub fn onset(&self) -> usize {
        match *self {
            DriftPhase::Gradual { start, .. } | DriftPhase::SensorDegradation { start, .. } => {
                start
            }
            DriftPhase::Abrupt { at, .. } | DriftPhase::NovelScene { at, .. } => at,
        }
    }
}

/// A seeded, composable drift schedule. Applying the same schedule to the
/// same clip always produces the same drifted clip; an empty schedule is a
/// literal no-op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftSchedule {
    /// The phases, applied additively where they overlap.
    pub phases: Vec<DriftPhase>,
    /// Seed of the schedule's own noise stream (used only by
    /// [`DriftPhase::SensorDegradation`]); independent from the clip seed so
    /// stationary generation never observes it.
    pub seed: Seed,
}

impl DriftSchedule {
    /// A schedule with no phases: applying it changes nothing.
    pub fn stationary(seed: Seed) -> Self {
        Self { phases: Vec::new(), seed }
    }

    /// Builds a schedule from phases.
    pub fn new(phases: Vec<DriftPhase>, seed: Seed) -> Self {
        Self { phases, seed }
    }

    /// Whether the schedule can alter any frame.
    pub fn is_stationary(&self) -> bool {
        self.phases.is_empty()
    }

    /// Earliest frame at which any phase begins (`None` when stationary).
    pub fn first_onset(&self) -> Option<usize> {
        self.phases.iter().map(DriftPhase::onset).min()
    }

    /// Applies the schedule to `clip` in place. Frames before every phase's
    /// onset are left untouched at the byte level; the world model supplies
    /// the style geometry of the clip's own scene and of each drift target.
    pub fn apply(&self, world: &WorldModel, clip: &mut VideoClip) {
        if self.is_stationary() {
            return;
        }
        let source = world.scene_style(&clip.attributes);
        let source_gain = source.signal_gain();
        // Pre-resolve per-phase style deltas so the per-frame loop is cheap.
        let resolved: Vec<ResolvedPhase> = self
            .phases
            .iter()
            .map(|phase| match *phase {
                DriftPhase::Gradual { target, strength, .. }
                | DriftPhase::Abrupt { target, strength, .. }
                | DriftPhase::NovelScene { target, strength, .. } => {
                    let t = world.scene_style(&target);
                    let delta: Vec<f32> = t
                        .latent
                        .iter()
                        .zip(source.latent.iter())
                        .map(|(&a, &b)| a - b)
                        .collect();
                    ResolvedPhase::Style {
                        phase: *phase,
                        delta,
                        gain_ratio: t.signal_gain() / source_gain,
                        strength: strength.clamp(0.0, 2.0),
                    }
                }
                DriftPhase::SensorDegradation { min_gain, noise_std, .. } => {
                    ResolvedPhase::Sensor {
                        phase: *phase,
                        min_gain: min_gain.clamp(0.05, 1.0),
                        noise_std: noise_std.max(0.0),
                    }
                }
            })
            .collect();

        let mut rng = rng_from_seed(self.seed);
        for (i, frame) in clip.frames.iter_mut().enumerate() {
            let mut shift = vec![0.0f32; frame.features.len()];
            let mut scale = 1.0f32;
            let mut noise_std = 0.0f32;
            let mut active = false;
            for r in &resolved {
                match r {
                    ResolvedPhase::Style { phase, delta, gain_ratio, strength } => {
                        let w = phase.progress(i) * strength;
                        if w > 0.0 {
                            active = true;
                            for (s, &d) in shift.iter_mut().zip(delta.iter()) {
                                *s += w * d;
                            }
                            scale *= 1.0 + w * (gain_ratio - 1.0);
                        }
                    }
                    ResolvedPhase::Sensor { phase, min_gain, noise_std: terminal } => {
                        let p = phase.progress(i);
                        if p > 0.0 {
                            active = true;
                            scale *= 1.0 + p * (min_gain - 1.0);
                            noise_std += p * terminal;
                        }
                    }
                }
            }
            if !active {
                continue;
            }
            scale = scale.clamp(0.05, 4.0);
            let mut brightness_scale = scale.min(1.0);
            for (k, v) in frame.features.iter_mut().enumerate() {
                // Invert the bounded activation, drift in pre-activation
                // space, re-bound. Features sit strictly inside (-1, 1), so
                // atanh is finite; clamp defensively anyway.
                let raw = v.clamp(-0.999_99, 0.999_99).atanh();
                let mut drifted = scale * raw + shift[k];
                if noise_std > 0.0 {
                    drifted += sample_normal(&mut rng, noise_std);
                }
                *v = drifted.tanh();
            }
            if noise_std > 0.0 {
                brightness_scale *= 1.0 / (1.0 + noise_std);
            }
            // Photometric metadata tracks the applied attenuation so drifted
            // clips stay plausible in the Fig. 5 statistics.
            frame.meta.brightness = (frame.meta.brightness * brightness_scale).clamp(0.02, 1.0);
            frame.meta.contrast = (frame.meta.contrast * brightness_scale).clamp(0.02, 1.0);
        }
    }
}

enum ResolvedPhase {
    Style { phase: DriftPhase, delta: Vec<f32>, gain_ratio: f32, strength: f32 },
    Sensor { phase: DriftPhase, min_gain: f32, noise_std: f32 },
}

/// Generates a clip through the stationary path and then applies `schedule`.
/// With a stationary schedule this is exactly [`WorldModel::generate_clip`].
#[allow(clippy::too_many_arguments)]
pub fn generate_drifted_clip(
    world: &WorldModel,
    id: ClipId,
    source: DatasetSource,
    attrs: SceneAttributes,
    length: usize,
    density: f32,
    clip_seed: Seed,
    schedule: &DriftSchedule,
) -> VideoClip {
    let mut clip = world.generate_clip(id, source, attrs, length, density, clip_seed);
    schedule.apply(world, &mut clip);
    clip
}

fn sample_normal<R: Rng + ?Sized>(rng: &mut R, std: f32) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Location, TimeOfDay, Weather, WorldConfig};

    fn world() -> WorldModel {
        WorldModel::new(WorldConfig::default(), Seed(31))
    }

    fn urban_day() -> SceneAttributes {
        SceneAttributes::new(Weather::Clear, Location::Urban, TimeOfDay::Daytime)
    }

    fn foggy_night() -> SceneAttributes {
        SceneAttributes::new(Weather::Foggy, Location::Tunnel, TimeOfDay::Night)
    }

    fn stationary_clip(seed: Seed) -> VideoClip {
        world().generate_clip(ClipId(0), DatasetSource::Shd, urban_day(), 80, 1.0, seed)
    }

    #[test]
    fn stationary_schedule_is_a_byte_identical_noop() {
        let baseline = stationary_clip(Seed(1));
        let drifted = generate_drifted_clip(
            &world(),
            ClipId(0),
            DatasetSource::Shd,
            urban_day(),
            80,
            1.0,
            Seed(1),
            &DriftSchedule::stationary(Seed(999)),
        );
        assert_eq!(baseline, drifted);
    }

    #[test]
    fn frames_before_onset_are_untouched() {
        let baseline = stationary_clip(Seed(2));
        let schedule = DriftSchedule::new(
            vec![DriftPhase::Abrupt { target: foggy_night(), at: 40, strength: 1.0 }],
            Seed(7),
        );
        let mut drifted = baseline.clone();
        schedule.apply(&world(), &mut drifted);
        assert_eq!(baseline.frames[..40], drifted.frames[..40]);
        assert_ne!(baseline.frames[40..], drifted.frames[40..]);
    }

    #[test]
    fn drift_application_is_deterministic() {
        let schedule = DriftSchedule::new(
            vec![
                DriftPhase::Gradual { target: foggy_night(), start: 10, end: 50, strength: 1.0 },
                DriftPhase::SensorDegradation { start: 30, end: 70, min_gain: 0.4, noise_std: 0.2 },
            ],
            Seed(11),
        );
        let mut a = stationary_clip(Seed(3));
        let mut b = stationary_clip(Seed(3));
        schedule.apply(&world(), &mut a);
        schedule.apply(&world(), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn gradual_drift_ramps_monotonically_toward_target() {
        let w = world();
        let baseline = stationary_clip(Seed(4));
        let schedule = DriftSchedule::new(
            vec![DriftPhase::Gradual { target: foggy_night(), start: 0, end: 79, strength: 1.0 }],
            Seed(13),
        );
        let mut drifted = baseline.clone();
        schedule.apply(&w, &mut drifted);
        let dist = |i: usize| {
            anole_tensor::l2_distance(&baseline.frames[i].features, &drifted.frames[i].features)
        };
        // Displacement grows with progress (sampled sparsely to dodge noise).
        assert!(dist(10) < dist(40));
        assert!(dist(40) < dist(75));
    }

    #[test]
    fn drifted_features_stay_bounded() {
        let schedule = DriftSchedule::new(
            vec![
                DriftPhase::Abrupt { target: foggy_night(), at: 0, strength: 2.0 },
                DriftPhase::SensorDegradation { start: 0, end: 10, min_gain: 0.05, noise_std: 1.5 },
            ],
            Seed(17),
        );
        let mut clip = stationary_clip(Seed(5));
        schedule.apply(&world(), &mut clip);
        for f in &clip.frames {
            assert!(f.features.iter().all(|v| v.is_finite() && v.abs() <= 1.0));
            assert!((0.02..=1.0).contains(&f.meta.brightness));
            assert!((0.02..=1.0).contains(&f.meta.contrast));
        }
    }

    #[test]
    fn drift_never_alters_ground_truth() {
        let baseline = stationary_clip(Seed(6));
        let schedule = DriftSchedule::new(
            vec![
                DriftPhase::NovelScene { target: foggy_night(), at: 5, strength: 1.5 },
                DriftPhase::SensorDegradation { start: 0, end: 40, min_gain: 0.2, noise_std: 0.5 },
            ],
            Seed(19),
        );
        let mut drifted = baseline.clone();
        schedule.apply(&world(), &mut drifted);
        for (b, d) in baseline.frames.iter().zip(drifted.frames.iter()) {
            assert_eq!(b.truth, d.truth);
            assert_eq!(b.meta.object_count, d.meta.object_count);
        }
    }

    #[test]
    fn sensor_degradation_darkens_metadata() {
        let baseline = stationary_clip(Seed(8));
        let schedule = DriftSchedule::new(
            vec![DriftPhase::SensorDegradation { start: 0, end: 20, min_gain: 0.3, noise_std: 0.4 }],
            Seed(23),
        );
        let mut drifted = baseline.clone();
        schedule.apply(&world(), &mut drifted);
        let mean = |c: &VideoClip| {
            c.frames.iter().map(|f| f.meta.brightness).sum::<f32>() / c.len() as f32
        };
        assert!(mean(&drifted) < mean(&baseline));
    }

    #[test]
    fn phase_progress_and_onset() {
        let g = DriftPhase::Gradual { target: foggy_night(), start: 10, end: 30, strength: 1.0 };
        assert_eq!(g.progress(9), 0.0);
        assert_eq!(g.progress(20), 0.5);
        assert_eq!(g.progress(30), 1.0);
        assert_eq!(g.onset(), 10);
        let a = DriftPhase::Abrupt { target: foggy_night(), at: 5, strength: 1.0 };
        assert_eq!(a.progress(4), 0.0);
        assert_eq!(a.progress(5), 1.0);
        assert_eq!(a.onset(), 5);
        let s = DriftSchedule::new(vec![g, a], Seed(1));
        assert_eq!(s.first_onset(), Some(5));
        assert!(DriftSchedule::stationary(Seed(1)).first_onset().is_none());
    }

    #[test]
    fn schedule_round_trips_through_serde() {
        let schedule = DriftSchedule::new(
            vec![
                DriftPhase::Gradual { target: foggy_night(), start: 1, end: 2, strength: 0.5 },
                DriftPhase::SensorDegradation { start: 3, end: 4, min_gain: 0.5, noise_std: 0.1 },
            ],
            Seed(29),
        );
        let json = serde_json::to_string(&schedule).unwrap();
        let back: DriftSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(schedule, back);
    }
}
