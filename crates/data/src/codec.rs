//! Compact binary encoding of video clips.
//!
//! Generated footage is shared between the profiling server and analysis
//! tooling (and checked into experiment archives); JSON blows a 250-frame
//! clip up to several hundred kilobytes. This codec stores features as raw
//! little-endian `f32`, ground truth as a bitset, and metadata packed — a
//! ~6× size reduction — with bounds-checked decoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{
    ClipId, DatasetSource, Frame, FrameMeta, Location, SceneAttributes, TimeOfDay, VideoClip,
    Weather,
};

const MAGIC: &[u8; 4] = b"ANOL";
const VERSION: u16 = 1;

/// Error returned when decoding malformed clip bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeClipError {
    detail: String,
}

impl DecodeClipError {
    fn new(detail: impl Into<String>) -> Self {
        Self {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for DecodeClipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid clip encoding: {}", self.detail)
    }
}

impl std::error::Error for DecodeClipError {}

/// Encodes clips into the compact binary format.
///
/// # Examples
///
/// ```
/// use anole_data::{decode_clips, encode_clips, DatasetConfig, DrivingDataset};
/// use anole_tensor::Seed;
///
/// let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(1));
/// let bytes = encode_clips(&dataset.clips()[..2]);
/// let clips = decode_clips(&bytes)?;
/// assert_eq!(clips.as_slice(), &dataset.clips()[..2]);
/// # Ok::<(), anole_data::DecodeClipError>(())
/// ```
pub fn encode_clips(clips: &[VideoClip]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(clips.len() as u32);
    for clip in clips {
        buf.put_u64_le(clip.id.0 as u64);
        buf.put_u8(match clip.source {
            DatasetSource::Kitti => 0,
            DatasetSource::Bdd100k => 1,
            DatasetSource::Shd => 2,
        });
        buf.put_u8(clip.attributes.weather.index() as u8);
        buf.put_u8(clip.attributes.location.index() as u8);
        buf.put_u8(clip.attributes.time.index() as u8);
        buf.put_u8(u8::from(clip.seen));
        buf.put_u32_le(clip.frames.len() as u32);
        let feature_dim = clip.frames.first().map(|f| f.features.len()).unwrap_or(0);
        let cells = clip.frames.first().map(|f| f.truth.len()).unwrap_or(0);
        buf.put_u16_le(feature_dim as u16);
        buf.put_u16_le(cells as u16);
        for frame in &clip.frames {
            for &v in &frame.features {
                buf.put_f32_le(v);
            }
            // Truth bitset, LSB-first within each byte.
            let mut byte = 0u8;
            for (i, &t) in frame.truth.iter().enumerate() {
                if t {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    buf.put_u8(byte);
                    byte = 0;
                }
            }
            if cells % 8 != 0 {
                buf.put_u8(byte);
            }
            buf.put_f32_le(frame.meta.brightness);
            buf.put_f32_le(frame.meta.contrast);
            buf.put_u16_le(frame.meta.object_count as u16);
            buf.put_f32_le(frame.meta.object_area);
        }
    }
    buf.freeze()
}

/// Decodes clips from the compact binary format.
///
/// # Errors
///
/// Returns [`DecodeClipError`] on a bad magic/version, truncated input, or
/// out-of-range enum tags.
pub fn decode_clips(mut bytes: &[u8]) -> Result<Vec<VideoClip>, DecodeClipError> {
    let need = |buf: &&[u8], n: usize, what: &str| -> Result<(), DecodeClipError> {
        if buf.remaining() < n {
            Err(DecodeClipError::new(format!("truncated while reading {what}")))
        } else {
            Ok(())
        }
    };

    need(&bytes, 6, "header")?;
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeClipError::new("bad magic"));
    }
    let version = bytes.get_u16_le();
    if version != VERSION {
        return Err(DecodeClipError::new(format!("unsupported version {version}")));
    }
    need(&bytes, 4, "clip count")?;
    let clip_count = bytes.get_u32_le() as usize;

    let mut clips = Vec::with_capacity(clip_count.min(1 << 16));
    for _ in 0..clip_count {
        need(&bytes, 8 + 5 + 4 + 4, "clip header")?;
        let id = ClipId(bytes.get_u64_le() as usize);
        let source = match bytes.get_u8() {
            0 => DatasetSource::Kitti,
            1 => DatasetSource::Bdd100k,
            2 => DatasetSource::Shd,
            other => return Err(DecodeClipError::new(format!("bad source tag {other}"))),
        };
        let weather = *Weather::ALL
            .get(bytes.get_u8() as usize)
            .ok_or_else(|| DecodeClipError::new("bad weather tag"))?;
        let location = *Location::ALL
            .get(bytes.get_u8() as usize)
            .ok_or_else(|| DecodeClipError::new("bad location tag"))?;
        let time = *TimeOfDay::ALL
            .get(bytes.get_u8() as usize)
            .ok_or_else(|| DecodeClipError::new("bad time tag"))?;
        let seen = bytes.get_u8() != 0;
        let frame_count = bytes.get_u32_le() as usize;
        let feature_dim = bytes.get_u16_le() as usize;
        let cells = bytes.get_u16_le() as usize;
        let truth_bytes = cells.div_ceil(8);
        let frame_size = feature_dim * 4 + truth_bytes + 4 + 4 + 2 + 4;

        let mut frames = Vec::with_capacity(frame_count.min(1 << 20));
        for _ in 0..frame_count {
            need(&bytes, frame_size, "frame")?;
            let mut features = Vec::with_capacity(feature_dim);
            for _ in 0..feature_dim {
                features.push(bytes.get_f32_le());
            }
            let mut truth = Vec::with_capacity(cells);
            let mut byte = 0u8;
            for i in 0..cells {
                if i % 8 == 0 {
                    byte = bytes.get_u8();
                }
                truth.push(byte & (1 << (i % 8)) != 0);
            }
            let meta = FrameMeta {
                brightness: bytes.get_f32_le(),
                contrast: bytes.get_f32_le(),
                object_count: bytes.get_u16_le() as usize,
                object_area: bytes.get_f32_le(),
            };
            frames.push(Frame {
                features,
                truth,
                meta,
            });
        }
        clips.push(VideoClip {
            id,
            source,
            attributes: SceneAttributes::new(weather, location, time),
            frames,
            seen,
        });
    }
    if bytes.has_remaining() {
        return Err(DecodeClipError::new(format!(
            "{} trailing bytes",
            bytes.remaining()
        )));
    }
    Ok(clips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetConfig, DrivingDataset};
    use anole_tensor::Seed;

    fn clips() -> Vec<VideoClip> {
        DrivingDataset::generate(&DatasetConfig::small(), Seed(171))
            .clips()
            .to_vec()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let clips = clips();
        let bytes = encode_clips(&clips);
        let decoded = decode_clips(&bytes).unwrap();
        assert_eq!(decoded, clips);
    }

    #[test]
    fn empty_input_round_trips() {
        let bytes = encode_clips(&[]);
        assert_eq!(decode_clips(&bytes).unwrap(), Vec::<VideoClip>::new());
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let clips = clips();
        let binary = encode_clips(&clips).len();
        let json = serde_json::to_string(&clips).unwrap().len();
        assert!(
            binary * 3 < json,
            "binary {binary} bytes vs json {json} bytes"
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let clips = clips();
        let mut bytes = encode_clips(&clips).to_vec();
        bytes[0] = b'X';
        let err = decode_clips(&bytes).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let clips = clips();
        let bytes = encode_clips(&clips[..1]);
        // Any strict prefix must fail cleanly, never panic.
        for cut in [0, 3, 5, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_clips(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let clips = clips();
        let mut bytes = encode_clips(&clips[..1]).to_vec();
        bytes.push(0xFF);
        assert!(decode_clips(&bytes).unwrap_err().to_string().contains("trailing"));
    }

    #[test]
    fn bad_enum_tags_are_rejected() {
        let clips = clips();
        let mut bytes = encode_clips(&clips[..1]).to_vec();
        // The source tag sits right after header(6) + count(4) + id(8).
        bytes[18] = 9;
        assert!(decode_clips(&bytes).unwrap_err().to_string().contains("bad source tag"));
    }
}
