//! The generative world model: scene-conditioned styles and mixing matrices.
//!
//! Everything the paper needs from real dashcam footage is induced here:
//! a scene's *style* (a latent vector composed from per-attribute
//! embeddings, so semantically close scenes are close in feature space), a
//! scene's *mixing matrix* (how ground-truth objects project into observed
//! features — the part a detector must invert, and the part that varies
//! across scenes), and scene-dependent photometrics and object statistics.

use anole_tensor::{rng_from_seed, split_seed, Matrix, Seed};
use serde::{Deserialize, Serialize};

use crate::{Location, SceneAttributes, TimeOfDay, Weather};

/// Detection grid dimensions: frames are divided into `rows × cols` cells
/// and detectors predict per-cell occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridSpec {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
}

impl GridSpec {
    /// Total number of cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

impl Default for GridSpec {
    /// A 4×4 grid (16 cells).
    fn default() -> Self {
        Self { rows: 4, cols: 4 }
    }
}

/// Tunables of the generative world.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Dimensionality of observed frame features.
    pub feature_dim: usize,
    /// Detection grid.
    pub grid: GridSpec,
    /// Scale of the scene-style component of features.
    pub style_strength: f32,
    /// Standard deviation of per-frame observation noise.
    pub noise_std: f32,
    /// Standard deviation of the per-clip feature offset.
    pub clip_offset_std: f32,
    /// AR(1) correlation of the observation noise across frames.
    pub temporal_rho: f32,
    /// Per-frame survival probability of an object.
    pub object_persistence: f32,
    /// Scale of the scene-specific perturbation of the mixing matrix,
    /// relative to the shared base mixing (0 = every scene identical).
    pub scene_mixing_strength: f32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            feature_dim: 32,
            grid: GridSpec::default(),
            style_strength: 0.5,
            noise_std: 0.18,
            clip_offset_std: 0.08,
            temporal_rho: 0.9,
            object_persistence: 0.92,
            scene_mixing_strength: 4.0,
        }
    }
}

/// Everything scene-dependent about generation, derived deterministically
/// from the world seed and a scene's attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneStyle {
    /// Object-to-feature mixing matrix (`cells × feature_dim`).
    pub mixing: Matrix,
    /// Latent style vector added to every frame feature (`feature_dim`).
    pub latent: Vec<f32>,
    /// Mean image brightness of the scene, in `[0, 1]`.
    pub brightness: f32,
    /// Mean image contrast of the scene, in `[0, 1]`.
    pub contrast: f32,
    /// Expected number of visible objects per frame (before dataset density
    /// scaling).
    pub object_rate: f32,
    /// Normalized spatial prior over grid cells for object placement.
    pub spatial_prior: Vec<f32>,
}

impl SceneStyle {
    /// Signal gain applied to the object component: poor light and low
    /// contrast attenuate the evidence a detector sees, which is what makes
    /// night/tunnel/fog scenes hard.
    pub fn signal_gain(&self) -> f32 {
        0.35 + 0.65 * self.brightness.sqrt() * (0.4 + 0.6 * self.contrast)
    }
}

/// The deterministic generative world. All per-attribute embeddings and
/// mixing perturbations are fixed by the construction seed, so the same
/// `(config, seed)` pair always describes the same world.
#[derive(Debug, Clone)]
pub struct WorldModel {
    config: WorldConfig,
    base_mixing: Matrix,
    weather_mixing: Vec<Matrix>,
    location_mixing: Vec<Matrix>,
    time_mixing: Vec<Matrix>,
    weather_style: Vec<Vec<f32>>,
    location_style: Vec<Vec<f32>>,
    time_style: Vec<Vec<f32>>,
    location_prior: Vec<Vec<f32>>,
}

impl WorldModel {
    /// Builds the world from a configuration and seed.
    pub fn new(config: WorldConfig, seed: Seed) -> Self {
        let cells = config.grid.cells();
        let d = config.feature_dim;
        let col_scale = 1.0 / (cells as f32).sqrt();

        let mut rng = rng_from_seed(split_seed(seed, 0));
        let base_mixing = Matrix::random_normal(cells, d, col_scale, &mut rng);

        let perturb = |rng: &mut rand::rngs::StdRng, n: usize| -> Vec<Matrix> {
            (0..n)
                .map(|_| {
                    Matrix::random_normal(
                        cells,
                        d,
                        col_scale * config.scene_mixing_strength / 1.7,
                        rng,
                    )
                })
                .collect()
        };
        let mut rng = rng_from_seed(split_seed(seed, 1));
        let weather_mixing = perturb(&mut rng, Weather::ALL.len());
        let location_mixing = perturb(&mut rng, Location::ALL.len());
        let time_mixing = perturb(&mut rng, TimeOfDay::ALL.len());

        let styles = |rng: &mut rand::rngs::StdRng, n: usize| -> Vec<Vec<f32>> {
            (0..n)
                .map(|_| Matrix::random_normal(1, d, 1.0, rng).into_vec())
                .collect()
        };
        let mut rng = rng_from_seed(split_seed(seed, 2));
        let weather_style = styles(&mut rng, Weather::ALL.len());
        let location_style = styles(&mut rng, Location::ALL.len());
        let time_style = styles(&mut rng, TimeOfDay::ALL.len());

        // Per-location spatial priors: a smooth bump around a
        // location-specific focus cell, so highways concentrate objects in
        // lane cells while urban scenes spread them out.
        let mut rng = rng_from_seed(split_seed(seed, 3));
        let location_prior = Location::ALL
            .iter()
            .map(|loc| {
                let focus_row = rng.gen_range(0..config.grid.rows) as f32;
                let focus_col = rng.gen_range(0..config.grid.cols) as f32;
                let spread = match loc {
                    Location::Urban | Location::Residential => 2.5,
                    Location::ParkingLot | Location::GasStation => 1.8,
                    _ => 1.0,
                };
                let mut prior = Vec::with_capacity(cells);
                for r in 0..config.grid.rows {
                    for c in 0..config.grid.cols {
                        let dr = r as f32 - focus_row;
                        let dc = c as f32 - focus_col;
                        prior.push((-(dr * dr + dc * dc) / (2.0 * spread * spread)).exp());
                    }
                }
                let sum: f32 = prior.iter().sum();
                prior.iter_mut().for_each(|p| *p /= sum);
                prior
            })
            .collect();

        Self {
            config,
            base_mixing,
            weather_mixing,
            location_mixing,
            time_mixing,
            weather_style,
            location_style,
            time_style,
            location_prior,
        }
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Mean brightness of a scene, in `[0, 1]`.
    pub fn brightness_of(&self, attrs: &SceneAttributes) -> f32 {
        let time: f32 = match attrs.time {
            TimeOfDay::Daytime => 0.75,
            TimeOfDay::DawnDusk => 0.48,
            TimeOfDay::Night => 0.22,
        };
        let weather: f32 = match attrs.weather {
            Weather::Clear => 0.08,
            Weather::Overcast => -0.05,
            Weather::Rainy => -0.10,
            Weather::Snowy => 0.05,
            Weather::Foggy => -0.04,
        };
        let location: f32 = match attrs.location {
            Location::Tunnel => -0.25,
            Location::Bridge => 0.02,
            _ => 0.0,
        };
        (time + weather + location).clamp(0.05, 0.98)
    }

    /// Mean contrast of a scene, in `[0, 1]`.
    pub fn contrast_of(&self, attrs: &SceneAttributes) -> f32 {
        let weather: f32 = match attrs.weather {
            Weather::Clear => 0.72,
            Weather::Overcast => 0.55,
            Weather::Rainy => 0.48,
            Weather::Snowy => 0.42,
            Weather::Foggy => 0.28,
        };
        let time: f32 = match attrs.time {
            TimeOfDay::Daytime => 0.06,
            TimeOfDay::DawnDusk => 0.0,
            TimeOfDay::Night => -0.08,
        };
        let location: f32 = match attrs.location {
            Location::Tunnel => 0.10, // artificial lighting: harsh contrast
            _ => 0.0,
        };
        (weather + time + location).clamp(0.05, 0.95)
    }

    /// Expected visible objects per frame for a scene (before dataset
    /// density scaling).
    pub fn object_rate_of(&self, attrs: &SceneAttributes) -> f32 {
        let base = match attrs.location {
            Location::Highway => 3.2,
            Location::Urban => 7.5,
            Location::Residential => 4.5,
            Location::ParkingLot => 6.0,
            Location::Tunnel => 2.2,
            Location::GasStation => 3.6,
            Location::Bridge => 3.0,
            Location::TollBooth => 5.0,
        };
        let time: f32 = match attrs.time {
            TimeOfDay::Daytime => 1.0,
            TimeOfDay::DawnDusk => 0.9,
            TimeOfDay::Night => 0.7,
        };
        base * time
    }

    /// Derives the full per-scene generation style.
    pub fn scene_style(&self, attrs: &SceneAttributes) -> SceneStyle {
        let d = self.config.feature_dim;
        let mut mixing = self.base_mixing.clone();
        mixing
            .axpy(1.0, &self.weather_mixing[attrs.weather.index()])
            .expect("same shape");
        mixing
            .axpy(1.0, &self.location_mixing[attrs.location.index()])
            .expect("same shape");
        mixing
            .axpy(1.0, &self.time_mixing[attrs.time.index()])
            .expect("same shape");

        let mut latent = vec![0.0f32; d];
        for component in [
            &self.weather_style[attrs.weather.index()],
            &self.location_style[attrs.location.index()],
            &self.time_style[attrs.time.index()],
        ] {
            for (a, &b) in latent.iter_mut().zip(component.iter()) {
                *a += b;
            }
        }
        let scale = self.config.style_strength / 3.0f32.sqrt();
        latent.iter_mut().for_each(|v| *v *= scale);

        SceneStyle {
            mixing,
            latent,
            brightness: self.brightness_of(attrs),
            contrast: self.contrast_of(attrs),
            object_rate: self.object_rate_of(attrs),
            spatial_prior: self.location_prior[attrs.location.index()].clone(),
        }
    }
}

use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> WorldModel {
        WorldModel::new(WorldConfig::default(), Seed(99))
    }

    fn attrs(w: Weather, l: Location, t: TimeOfDay) -> SceneAttributes {
        SceneAttributes::new(w, l, t)
    }

    #[test]
    fn construction_is_deterministic() {
        let a = world();
        let b = world();
        let s = attrs(Weather::Rainy, Location::Urban, TimeOfDay::Night);
        assert_eq!(a.scene_style(&s), b.scene_style(&s));
    }

    #[test]
    fn different_seeds_give_different_worlds() {
        let a = WorldModel::new(WorldConfig::default(), Seed(1));
        let b = WorldModel::new(WorldConfig::default(), Seed(2));
        let s = attrs(Weather::Clear, Location::Highway, TimeOfDay::Daytime);
        assert_ne!(a.scene_style(&s).mixing, b.scene_style(&s).mixing);
    }

    #[test]
    fn night_is_darker_than_day_and_tunnel_darker_still() {
        let w = world();
        let day = w.brightness_of(&attrs(Weather::Clear, Location::Urban, TimeOfDay::Daytime));
        let night = w.brightness_of(&attrs(Weather::Clear, Location::Urban, TimeOfDay::Night));
        let tunnel = w.brightness_of(&attrs(Weather::Clear, Location::Tunnel, TimeOfDay::Night));
        assert!(day > night);
        assert!(night > tunnel);
    }

    #[test]
    fn fog_kills_contrast() {
        let w = world();
        let clear = w.contrast_of(&attrs(Weather::Clear, Location::Urban, TimeOfDay::Daytime));
        let foggy = w.contrast_of(&attrs(Weather::Foggy, Location::Urban, TimeOfDay::Daytime));
        assert!(clear > foggy + 0.2);
    }

    #[test]
    fn urban_has_more_objects_than_tunnel() {
        let w = world();
        let urban = w.object_rate_of(&attrs(Weather::Clear, Location::Urban, TimeOfDay::Daytime));
        let tunnel = w.object_rate_of(&attrs(Weather::Clear, Location::Tunnel, TimeOfDay::Daytime));
        assert!(urban > 2.0 * tunnel);
    }

    #[test]
    fn signal_gain_orders_scenes_by_difficulty() {
        let w = world();
        let easy = w.scene_style(&attrs(Weather::Clear, Location::Urban, TimeOfDay::Daytime));
        let hard = w.scene_style(&attrs(Weather::Foggy, Location::Tunnel, TimeOfDay::Night));
        assert!(easy.signal_gain() > hard.signal_gain());
        assert!(hard.signal_gain() > 0.3, "gain floor keeps scenes learnable");
    }

    #[test]
    fn related_scenes_have_closer_styles_than_unrelated() {
        let w = world();
        let a = w.scene_style(&attrs(Weather::Rainy, Location::Highway, TimeOfDay::Night));
        let b = w.scene_style(&attrs(Weather::Rainy, Location::Highway, TimeOfDay::DawnDusk));
        let c = w.scene_style(&attrs(Weather::Clear, Location::ParkingLot, TimeOfDay::Daytime));
        let d_ab = anole_tensor::l2_distance(&a.latent, &b.latent);
        let d_ac = anole_tensor::l2_distance(&a.latent, &c.latent);
        assert!(d_ab < d_ac, "share-2-attribute scenes closer: {d_ab} vs {d_ac}");
    }

    #[test]
    fn related_scenes_have_closer_mixing_matrices() {
        let w = world();
        let a = w.scene_style(&attrs(Weather::Rainy, Location::Highway, TimeOfDay::Night));
        let b = w.scene_style(&attrs(Weather::Rainy, Location::Highway, TimeOfDay::Daytime));
        let c = w.scene_style(&attrs(Weather::Snowy, Location::Urban, TimeOfDay::Daytime));
        let d_ab = (&a.mixing - &b.mixing).frobenius_norm();
        let d_ac = (&a.mixing - &c.mixing).frobenius_norm();
        assert!(d_ab < d_ac);
    }

    #[test]
    fn spatial_priors_are_normalized_distributions() {
        let w = world();
        for loc in Location::ALL {
            let s = w.scene_style(&attrs(Weather::Clear, loc, TimeOfDay::Daytime));
            let sum: f32 = s.spatial_prior.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "{loc:?} prior sums to {sum}");
            assert!(s.spatial_prior.iter().all(|&p| p >= 0.0));
            assert_eq!(s.spatial_prior.len(), w.config().grid.cells());
        }
    }

    #[test]
    fn grid_spec_cells() {
        assert_eq!(GridSpec { rows: 3, cols: 5 }.cells(), 15);
        assert_eq!(GridSpec::default().cells(), 16);
    }
}
