//! A scene-conditioned generative driving world standing in for the paper's
//! KITTI / BDD100k / SHD dashcam datasets.
//!
//! The Anole paper's premises about data are what this crate makes true in
//! simulation:
//!
//! 1. every video clip carries **semantic attributes** — weather (5 values),
//!    location (8), time of day (3), the paper's 120 fine-grained semantic
//!    scenes (§IV-A1);
//! 2. frames from alike scenes are **alike in feature space**, because each
//!    scene contributes a latent style vector built from shared per-attribute
//!    embeddings;
//! 3. the mapping from ground-truth objects to observed features is
//!    **scene-conditioned** (a per-scene mixing matrix), so a capacity-limited
//!    detector trained on one group of scenes degrades on others —
//!    Proposition 1's world;
//! 4. consecutive frames are **temporally correlated** (objects persist,
//!    noise is AR(1)), so scene durations and model-switching dynamics
//!    emerge (Fig. 7a);
//! 5. per-frame brightness / contrast / object statistics are emitted as
//!    metadata with realistic diversity (Fig. 5).
//!
//! # Examples
//!
//! ```
//! use anole_data::{DatasetConfig, DrivingDataset};
//! use anole_tensor::Seed;
//!
//! let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(7));
//! assert!(dataset.clips().len() >= 8);
//! let split = dataset.split();
//! assert!(!split.train.is_empty() && !split.unseen_clips.is_empty());
//! ```

mod attributes;
mod clip;
mod codec;
mod dataset;
mod drift;
mod splice;
mod stats;
mod world;

pub use attributes::{Location, SceneAttributes, TimeOfDay, Weather, SEMANTIC_SCENE_COUNT};
pub use clip::{ClipId, Frame, FrameMeta, FrameRef, VideoClip};
pub use codec::{decode_clips, encode_clips, DecodeClipError};
pub use drift::{generate_drifted_clip, DriftPhase, DriftSchedule};
pub use dataset::{DatasetConfig, DatasetIoError, DatasetSource, DatasetSplit, DrivingDataset, SourceProfile};
pub use splice::{synthesize_fast_changing, SplicedClip, SpliceConfig};
pub use stats::{dataset_diversity, DiversityReport};
pub use world::{GridSpec, SceneStyle, WorldConfig, WorldModel};
