//! Property tests for the live registry (`enabled` feature):
//!
//! - sharded histogram accumulation is deterministic across thread counts;
//! - every span enter has a matching exit, with consistent parent/depth;
//! - the JSON metrics snapshot round-trips through serde exactly;
//! - the Prometheus text exposition is well-formed for arbitrary contents;
//! - `reset()` zeros values without invalidating cached metric handles.
//!
//! The registry is process-global, so every test serializes on one lock.

#![cfg(feature = "enabled")]

use std::sync::Mutex;

use anole_obs::{FixedHistogram, MetricsSnapshot, MonotonicClock, TickClock};
use proptest::prelude::*;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

const COUNTER_NAMES: [&str; 3] = ["prop.c0", "prop.c1", "prop.c2"];
const GAUGE_NAMES: [&str; 2] = ["prop.g0", "prop.g1"];

fn nest(depth: usize) {
    let _s = anole_obs::span!("prop.span");
    if depth > 1 {
        nest(depth - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_histogram_is_deterministic_across_thread_counts(
        values in prop::collection::vec(0.0f64..120.0, 1..200),
    ) {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        static BOUNDS: &[f64] = &[1.0, 5.0, 25.0, 100.0];
        let mut reference = FixedHistogram::new(BOUNDS);
        for &v in &values {
            reference.record(v);
        }
        for threads in [1usize, 2, 4] {
            anole_obs::reset();
            let h = anole_obs::histogram("prop.hist", BOUNDS);
            let chunk_len = values.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for chunk in values.chunks(chunk_len) {
                    scope.spawn(move || {
                        for &v in chunk {
                            h.record(v);
                        }
                    });
                }
            });
            prop_assert_eq!(&h.merged(), &reference);
        }
        anole_obs::reset();
    }

    #[test]
    fn span_enter_exit_events_balance(
        depths in prop::collection::vec(1usize..6, 1..40),
    ) {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        anole_obs::reset();
        anole_obs::set_clock(Box::new(TickClock::new()));
        for &d in &depths {
            nest(d);
        }
        let snap = anole_obs::snapshot();
        let total: usize = depths.iter().sum();
        prop_assert_eq!(snap.spans.len(), total);
        for s in &snap.spans {
            // Every enter has an exit, exits never precede enters.
            prop_assert!(s.exit_tick.is_some());
            prop_assert!(s.exit_tick.unwrap() >= s.enter_tick);
            if s.depth == 0 {
                prop_assert_eq!(s.parent, 0);
            } else {
                prop_assert!(s.parent != 0);
                prop_assert!(s.parent < s.id);
            }
        }
        // The trace renders one header plus one line per span.
        let trace = snap.render_trace();
        prop_assert_eq!(trace.lines().count(), total + 1);
        anole_obs::set_clock(Box::new(MonotonicClock::new()));
        anole_obs::reset();
    }

    #[test]
    fn metrics_snapshot_json_round_trips(
        counter_vals in prop::collection::vec(0u64..1000, 1..8),
        gauge_vals in prop::collection::vec(-1.0e6f64..1.0e6, 1..8),
        hist_vals in prop::collection::vec(0.0f64..300.0, 0..50),
    ) {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        anole_obs::reset();
        anole_obs::set_clock(Box::new(TickClock::new()));
        {
            let _root = anole_obs::span!("prop.root");
            let _child = anole_obs::span!("prop.child");
        }
        for (i, &v) in counter_vals.iter().enumerate() {
            anole_obs::counter_add(COUNTER_NAMES[i % COUNTER_NAMES.len()], v);
        }
        for (i, &v) in gauge_vals.iter().enumerate() {
            anole_obs::gauge_set(GAUGE_NAMES[i % GAUGE_NAMES.len()], v);
        }
        for &v in &hist_vals {
            anole_obs::histogram_record("prop.h", anole_obs::LATENCY_MS_BOUNDS, v);
        }
        let snap = anole_obs::snapshot();
        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, snap);
        anole_obs::set_clock(Box::new(MonotonicClock::new()));
        anole_obs::reset();
    }

    #[test]
    fn prometheus_exposition_is_well_formed(
        counter_vals in prop::collection::vec(0u64..1_000_000, 1..8),
        gauge_vals in prop::collection::vec(-1.0e9f64..1.0e9, 1..6),
        hist_vals in prop::collection::vec(0.0f64..5_000.0, 0..80),
    ) {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        anole_obs::reset();
        // Dotted and dashed source names exercise the sanitizer.
        for (i, &v) in counter_vals.iter().enumerate() {
            anole_obs::counter_add(COUNTER_NAMES[i % COUNTER_NAMES.len()], v);
        }
        anole_obs::counter_add("expo.c-total", counter_vals[0]);
        for (i, &v) in gauge_vals.iter().enumerate() {
            anole_obs::gauge_set(GAUGE_NAMES[i % GAUGE_NAMES.len()], v);
        }
        for &v in &hist_vals {
            anole_obs::histogram_record("expo.h", anole_obs::LATENCY_MS_BOUNDS, v);
        }
        let text = anole_obs::snapshot().to_prometheus();
        prop_assert!(text.contains("expo_c_total"), "sanitizer must rewrite `.`/`-`:\n{text}");

        // Every line is `# TYPE name kind` or `series value`, names match
        // the Prometheus grammar, and every sample value parses.
        let mut bucket_cumulative: Option<(String, u64)> = None;
        let mut last_inf: Option<(String, u64)> = None;
        for line in text.lines() {
            if let Some(decl) = line.strip_prefix("# TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().unwrap_or("");
                prop_assert!(valid_prom_name(name), "bad name in {line:?}");
                let kind = parts.next().unwrap_or("");
                prop_assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "bad kind in {line:?}"
                );
                prop_assert_eq!(parts.next(), None, "trailing tokens in {}", line);
                continue;
            }
            let (series, value) =
                line.rsplit_once(' ').unwrap_or_else(|| panic!("no value in {line:?}"));
            let name = series.split('{').next().unwrap_or("");
            prop_assert!(valid_prom_name(name), "bad name in {line:?}");
            let value: f64 = value.parse().unwrap_or_else(|e| panic!("bad value {line:?}: {e}"));
            if let Some(base) = name.strip_suffix("_bucket") {
                // Bucket labels are `le="..."`; cumulative counts are
                // monotone within one histogram, ending at `+Inf`.
                prop_assert!(series.contains("{le=\""), "bucket without le label: {line:?}");
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let count = value as u64;
                match &mut bucket_cumulative {
                    Some((prev_base, prev)) if prev_base.as_str() == base => {
                        prop_assert!(count >= *prev, "bucket went backwards: {line:?}");
                        *prev = count;
                    }
                    _ => bucket_cumulative = Some((base.to_string(), count)),
                }
                if series.contains("{le=\"+Inf\"}") {
                    last_inf = Some((base.to_string(), count));
                    bucket_cumulative = None;
                }
            } else if let Some(base) = name.strip_suffix("_count") {
                // `_count` equals the +Inf bucket of the same histogram.
                let (inf_base, inf) =
                    last_inf.as_ref().unwrap_or_else(|| panic!("_count before buckets: {line:?}"));
                prop_assert_eq!(inf_base.as_str(), base);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let count = value as u64;
                prop_assert_eq!(count, *inf, "count != +Inf bucket");
                if base == "expo_h" {
                    prop_assert_eq!(count as usize, hist_vals.len());
                }
            } else if name == "expo_h_sum" {
                let expected: f64 = hist_vals.iter().sum();
                // Sums accumulate in integer microseconds.
                let tolerance = 1e-6 * (hist_vals.len() + 1) as f64;
                prop_assert!((value - expected).abs() <= tolerance, "sum off: {line:?}");
            }
        }
        anole_obs::reset();
    }
}

/// Prometheus metric-name grammar: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_prom_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[test]
fn span_ring_is_bounded_and_counts_drops() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    anole_obs::reset();
    // 5000 spans emit 10000 events into an 8192-slot ring.
    for _ in 0..5000 {
        let _s = anole_obs::span!("prop.flood");
    }
    let snap = anole_obs::snapshot();
    assert!(snap.dropped_span_events > 0, "ring should have evicted events");
    assert!(
        snap.spans.len() < 5000,
        "assembled spans must reflect the bounded ring"
    );
    anole_obs::reset();
}

#[test]
fn last_root_span_id_tracks_completed_roots() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    anole_obs::reset();
    assert_eq!(anole_obs::last_root_span_id(), 0);
    let first = {
        let root = anole_obs::span!("prop.rootspan");
        let id = root.id();
        let _inner = anole_obs::span!("prop.innerspan");
        id
    };
    assert_eq!(anole_obs::last_root_span_id(), first);
    {
        let _again = anole_obs::span!("prop.rootspan");
    }
    assert!(anole_obs::last_root_span_id() > first);
    anole_obs::reset();
}

#[test]
fn reset_zeroes_values_but_never_invalidates_cached_handles() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    anole_obs::reset();
    // Handles cached before the reset: a direct `'static` reference and a
    // macro call site (one `CounterSite`, hit on both sides of the reset).
    let direct = anole_obs::counter("prop.reset.direct");
    let site_bump = || anole_obs::counter_add!("prop.reset.site", 7);
    direct.add(5);
    site_bump();
    site_bump();
    anole_obs::reset();
    // Post-reset bumps through the pre-reset handles must land in the next
    // snapshot: reset clears values only (registrations are leaked once and
    // live forever), per the `reset()` contract.
    direct.add(2);
    site_bump();
    let snap = anole_obs::snapshot();
    let value = |name: &str| {
        snap.counters.iter().find(|c| c.name == name).map(|c| c.value).unwrap_or_else(|| {
            panic!("{name} missing from post-reset snapshot");
        })
    };
    assert_eq!(value("prop.reset.direct"), 2, "pre-reset total leaked through");
    assert_eq!(value("prop.reset.site"), 7, "macro site lost its cached handle");
    anole_obs::reset();
}
