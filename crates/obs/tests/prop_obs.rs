//! Property tests for the live registry (`enabled` feature):
//!
//! - sharded histogram accumulation is deterministic across thread counts;
//! - every span enter has a matching exit, with consistent parent/depth;
//! - the JSON metrics snapshot round-trips through serde exactly.
//!
//! The registry is process-global, so every test serializes on one lock.

#![cfg(feature = "enabled")]

use std::sync::Mutex;

use anole_obs::{FixedHistogram, MetricsSnapshot, MonotonicClock, TickClock};
use proptest::prelude::*;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

const COUNTER_NAMES: [&str; 3] = ["prop.c0", "prop.c1", "prop.c2"];
const GAUGE_NAMES: [&str; 2] = ["prop.g0", "prop.g1"];

fn nest(depth: usize) {
    let _s = anole_obs::span!("prop.span");
    if depth > 1 {
        nest(depth - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_histogram_is_deterministic_across_thread_counts(
        values in prop::collection::vec(0.0f64..120.0, 1..200),
    ) {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        static BOUNDS: &[f64] = &[1.0, 5.0, 25.0, 100.0];
        let mut reference = FixedHistogram::new(BOUNDS);
        for &v in &values {
            reference.record(v);
        }
        for threads in [1usize, 2, 4] {
            anole_obs::reset();
            let h = anole_obs::histogram("prop.hist", BOUNDS);
            let chunk_len = values.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for chunk in values.chunks(chunk_len) {
                    scope.spawn(move || {
                        for &v in chunk {
                            h.record(v);
                        }
                    });
                }
            });
            prop_assert_eq!(&h.merged(), &reference);
        }
        anole_obs::reset();
    }

    #[test]
    fn span_enter_exit_events_balance(
        depths in prop::collection::vec(1usize..6, 1..40),
    ) {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        anole_obs::reset();
        anole_obs::set_clock(Box::new(TickClock::new()));
        for &d in &depths {
            nest(d);
        }
        let snap = anole_obs::snapshot();
        let total: usize = depths.iter().sum();
        prop_assert_eq!(snap.spans.len(), total);
        for s in &snap.spans {
            // Every enter has an exit, exits never precede enters.
            prop_assert!(s.exit_tick.is_some());
            prop_assert!(s.exit_tick.unwrap() >= s.enter_tick);
            if s.depth == 0 {
                prop_assert_eq!(s.parent, 0);
            } else {
                prop_assert!(s.parent != 0);
                prop_assert!(s.parent < s.id);
            }
        }
        // The trace renders one header plus one line per span.
        let trace = snap.render_trace();
        prop_assert_eq!(trace.lines().count(), total + 1);
        anole_obs::set_clock(Box::new(MonotonicClock::new()));
        anole_obs::reset();
    }

    #[test]
    fn metrics_snapshot_json_round_trips(
        counter_vals in prop::collection::vec(0u64..1000, 1..8),
        gauge_vals in prop::collection::vec(-1.0e6f64..1.0e6, 1..8),
        hist_vals in prop::collection::vec(0.0f64..300.0, 0..50),
    ) {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        anole_obs::reset();
        anole_obs::set_clock(Box::new(TickClock::new()));
        {
            let _root = anole_obs::span!("prop.root");
            let _child = anole_obs::span!("prop.child");
        }
        for (i, &v) in counter_vals.iter().enumerate() {
            anole_obs::counter_add(COUNTER_NAMES[i % COUNTER_NAMES.len()], v);
        }
        for (i, &v) in gauge_vals.iter().enumerate() {
            anole_obs::gauge_set(GAUGE_NAMES[i % GAUGE_NAMES.len()], v);
        }
        for &v in &hist_vals {
            anole_obs::histogram_record("prop.h", anole_obs::LATENCY_MS_BOUNDS, v);
        }
        let snap = anole_obs::snapshot();
        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, snap);
        anole_obs::set_clock(Box::new(MonotonicClock::new()));
        anole_obs::reset();
    }
}

#[test]
fn span_ring_is_bounded_and_counts_drops() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    anole_obs::reset();
    // 5000 spans emit 10000 events into an 8192-slot ring.
    for _ in 0..5000 {
        let _s = anole_obs::span!("prop.flood");
    }
    let snap = anole_obs::snapshot();
    assert!(snap.dropped_span_events > 0, "ring should have evicted events");
    assert!(
        snap.spans.len() < 5000,
        "assembled spans must reflect the bounded ring"
    );
    anole_obs::reset();
}

#[test]
fn last_root_span_id_tracks_completed_roots() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    anole_obs::reset();
    assert_eq!(anole_obs::last_root_span_id(), 0);
    let first = {
        let root = anole_obs::span!("prop.rootspan");
        let id = root.id();
        let _inner = anole_obs::span!("prop.innerspan");
        id
    };
    assert_eq!(anole_obs::last_root_span_id(), first);
    {
        let _again = anole_obs::span!("prop.rootspan");
    }
    assert!(anole_obs::last_root_span_id() > first);
    anole_obs::reset();
}
