//! The live metrics registry and span recorder (`enabled` feature on).
//!
//! Counters and gauges are single relaxed atomics; histograms shard their
//! buckets across a fixed set of atomic accumulators (one per worker-ish
//! thread, picked round-robin) so `for_each_row_chunk_n` workers never
//! contend on a lock in the hot path. All accumulation is integer addition,
//! which commutes, so snapshots are bit-identical regardless of thread
//! count or interleaving.
//!
//! Spans record enter/exit events into one bounded ring guarded by a mutex;
//! spans are coarse (stage/frame granularity), so the lock is uncontended in
//! practice. Per-thread span stacks give hierarchical parent/depth without
//! cross-thread coordination.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

use crate::clock::{Clock, MonotonicClock};
use crate::snapshot::{
    to_micros, CounterSample, FixedHistogram, GaugeSample, HistogramSample, MetricsSnapshot,
    SpanSample,
};

const N_SHARDS: usize = 8;
const RING_CAP: usize = 8192;

/// Always `true` in this build: the `enabled` feature is on.
pub const fn enabled() -> bool {
    true
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Monotonic counter: one relaxed `fetch_add`.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    #[inline]
    pub fn add(&self, v: u64) {
        self.value.fetch_add(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins gauge storing `f64` bits in an atomic.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0.0f64.to_bits(), Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct HistShard {
    /// `bounds.len() + 1` buckets, overflow last.
    counts: Box<[AtomicU64]>,
    sum_micros: AtomicI64,
}

/// Sharded fixed-bucket histogram. Each thread accumulates into its
/// round-robin-assigned shard; `merged()` folds the shards into a plain
/// [`FixedHistogram`]. Integer bucket counts + micro-unit sums make the
/// merge order-independent, hence deterministic across thread counts.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    shards: Vec<HistShard>,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        let shards = (0..N_SHARDS)
            .map(|_| HistShard {
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_micros: AtomicI64::new(0),
            })
            .collect();
        Self { bounds, shards }
    }

    #[inline]
    pub fn record(&self, v: f64) {
        let bucket = FixedHistogram::bucket_index(self.bounds, v);
        let shard = &self.shards[shard_index()];
        shard.counts[bucket].fetch_add(1, Ordering::Relaxed);
        shard.sum_micros.fetch_add(to_micros(v), Ordering::Relaxed);
    }

    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Fold all shards into one plain histogram.
    pub fn merged(&self) -> FixedHistogram {
        let mut counts = vec![0u64; self.bounds.len() + 1];
        let mut sum_micros = 0i64;
        for shard in &self.shards {
            for (acc, c) in counts.iter_mut().zip(shard.counts.iter()) {
                *acc += c.load(Ordering::Relaxed);
            }
            sum_micros += shard.sum_micros.load(Ordering::Relaxed);
        }
        FixedHistogram::from_parts(self.bounds, counts, sum_micros)
    }

    fn reset(&self) {
        for shard in &self.shards {
            for c in shard.counts.iter() {
                c.store(0, Ordering::Relaxed);
            }
            shard.sum_micros.store(0, Ordering::Relaxed);
        }
    }
}

fn shard_index() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
            s.set(idx);
        }
        idx
    })
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Ring {
    events: VecDeque<SpanEvent>,
    dropped: u64,
}

#[derive(Clone, Copy)]
struct SpanEvent {
    enter: bool,
    id: u64,
    parent: u64,
    name: &'static str,
    depth: u32,
    tick: u64,
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    ring: Mutex<Ring>,
    clock: RwLock<Box<dyn Clock>>,
    next_span_id: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        ring: Mutex::new(Ring {
            events: VecDeque::with_capacity(RING_CAP),
            dropped: 0,
        }),
        clock: RwLock::new(Box::new(MonotonicClock::new())),
        next_span_id: AtomicU64::new(0),
    })
}

/// Resolve (registering on first use) the counter named `name`. The handle
/// is `'static`: metrics live for the process lifetime.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = registry().counters.lock().expect("counter registry");
    *map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::default())))
}

/// Resolve (registering on first use) the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut map = registry().gauges.lock().expect("gauge registry");
    *map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Gauge::default())))
}

/// Resolve (registering on first use) the histogram named `name` with the
/// given bucket bounds. If the name is already registered, the existing
/// bounds win.
pub fn histogram(name: &'static str, bounds: &'static [f64]) -> &'static Histogram {
    let mut map = registry().histograms.lock().expect("histogram registry");
    *map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new(bounds))))
}

/// Add `v` to the counter named `name` (registry lookup per call; prefer
/// the `counter_add!` macro in hot paths, which caches the handle).
pub fn counter_add(name: &'static str, v: u64) {
    counter(name).add(v);
}

/// Set the gauge named `name` (registry lookup per call; prefer the
/// `gauge_set!` macro in hot paths).
pub fn gauge_set(name: &'static str, v: f64) {
    gauge(name).set(v);
}

/// Record `v` into the histogram named `name` (registry lookup per call;
/// prefer the `histogram_record!` macro in hot paths).
pub fn histogram_record(name: &'static str, bounds: &'static [f64], v: f64) {
    histogram(name, bounds).record(v);
}

// ---------------------------------------------------------------------------
// Call-site caches backing the `counter_add!`/`gauge_set!`/`histogram_record!`
// macros: one registry lookup per call site, one atomic op per call after.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
pub struct CounterSite(OnceLock<&'static Counter>);

impl CounterSite {
    pub const fn new() -> Self {
        Self(OnceLock::new())
    }

    #[inline]
    pub fn add(&self, name: &'static str, v: u64) {
        self.0.get_or_init(|| counter(name)).add(v);
    }
}

#[derive(Debug, Default)]
pub struct GaugeSite(OnceLock<&'static Gauge>);

impl GaugeSite {
    pub const fn new() -> Self {
        Self(OnceLock::new())
    }

    #[inline]
    pub fn set(&self, name: &'static str, v: f64) {
        self.0.get_or_init(|| gauge(name)).set(v);
    }
}

#[derive(Debug, Default)]
pub struct HistogramSite(OnceLock<&'static Histogram>);

impl HistogramSite {
    pub const fn new() -> Self {
        Self(OnceLock::new())
    }

    #[inline]
    pub fn record(&self, name: &'static str, bounds: &'static [f64], v: f64) {
        self.0.get_or_init(|| histogram(name, bounds)).record(v);
    }
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// Install a new time source for span timing (e.g. a deterministic
/// [`crate::TickClock`] in tests).
pub fn set_clock(clock: Box<dyn Clock>) {
    *registry().clock.write().expect("clock lock") = clock;
}

/// Current tick from the installed clock (nanoseconds under the default
/// [`MonotonicClock`]).
pub fn now() -> u64 {
    registry().clock.read().expect("clock lock").now()
}

/// Milliseconds elapsed since a tick previously obtained from [`now`].
/// Under a `TickClock` this is ticks / 1e6 — tiny but deterministic.
pub fn elapsed_ms(t0: u64) -> f64 {
    now().saturating_sub(t0) as f64 / 1e6
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static LAST_ROOT: Cell<u64> = const { Cell::new(0) };
}

/// RAII guard returned by [`span_enter`]/the `span!` macro: records the
/// enter event on creation and the exit event on drop.
#[derive(Debug)]
pub struct SpanGuard {
    id: u64,
    name: &'static str,
    depth: u32,
}

impl SpanGuard {
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Open a span named `name` on the current thread. Nesting is tracked via a
/// per-thread stack; the returned guard closes the span when dropped.
pub fn span_enter(name: &'static str) -> SpanGuard {
    let reg = registry();
    let id = reg.next_span_id.fetch_add(1, Ordering::Relaxed) + 1;
    let (parent, depth) = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        let depth = stack.len() as u32;
        stack.push(id);
        (parent, depth)
    });
    let tick = now();
    push_event(SpanEvent {
        enter: true,
        id,
        parent,
        name,
        depth,
        tick,
    });
    SpanGuard { id, name, depth }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else {
                // Out-of-order drop (guards moved across scopes): remove by id.
                stack.retain(|&x| x != self.id);
            }
        });
        let tick = now();
        push_event(SpanEvent {
            enter: false,
            id: self.id,
            parent: 0,
            name: self.name,
            depth: self.depth,
            tick,
        });
        if self.depth == 0 {
            LAST_ROOT.with(|c| c.set(self.id));
        }
    }
}

fn push_event(ev: SpanEvent) {
    let mut ring = registry().ring.lock().expect("span ring");
    if ring.events.len() == RING_CAP {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(ev);
}

/// Id of the most recently *closed* root span on the current thread (0 if
/// none). `Telemetry::record` uses this to link each frame to the
/// `omi.engine.step` span that produced it.
pub fn last_root_span_id() -> u64 {
    LAST_ROOT.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Export / reset
// ---------------------------------------------------------------------------

/// Snapshot every registered metric plus the span ring.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("counter registry")
        .iter()
        .map(|(name, c)| CounterSample {
            name: (*name).to_string(),
            value: c.get(),
        })
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .expect("gauge registry")
        .iter()
        .map(|(name, g)| GaugeSample {
            name: (*name).to_string(),
            value: g.get(),
        })
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("histogram registry")
        .iter()
        .map(|(name, h)| HistogramSample {
            name: (*name).to_string(),
            histogram: h.merged(),
        })
        .collect();

    let (spans, dropped) = {
        let ring = reg.ring.lock().expect("span ring");
        let mut spans: Vec<SpanSample> = Vec::new();
        let mut index: BTreeMap<u64, usize> = BTreeMap::new();
        for ev in &ring.events {
            if ev.enter {
                index.insert(ev.id, spans.len());
                spans.push(SpanSample {
                    id: ev.id,
                    parent: ev.parent,
                    name: ev.name.to_string(),
                    depth: ev.depth,
                    enter_tick: ev.tick,
                    exit_tick: None,
                });
            } else if let Some(&i) = index.get(&ev.id) {
                spans[i].exit_tick = Some(ev.tick);
            }
        }
        (spans, ring.dropped)
    };

    MetricsSnapshot {
        counters,
        gauges,
        histograms,
        spans,
        dropped_span_events: dropped,
    }
}

/// Capture one time-series window into `rec`: snapshots the registry and
/// diffs it against the recorder's previous capture, stamping the window
/// with the installed clock's tick (deterministic under a
/// [`crate::TickClock`]). Drive this at a fixed cadence — once per
/// scheduling window or every N frames — then query `rec` for windowed
/// rates and quantiles.
pub fn capture_series(rec: &mut crate::SeriesRecorder) {
    rec.capture(now(), &snapshot());
}

/// Prometheus text exposition of the current registry state.
pub fn to_prometheus() -> String {
    snapshot().to_prometheus()
}

/// Pretty-printed JSON of the current registry state.
pub fn to_json() -> String {
    snapshot().to_json()
}

/// Flamegraph-style text rendering of the span ring (`trace.txt` format).
pub fn render_trace() -> String {
    snapshot().render_trace()
}

/// Zero every metric, clear the span ring, and restart span ids.
///
/// Contract: reset clears *values only* — it never invalidates handles.
/// Metric registrations are `'static` (leaked once on first use), so a
/// [`Counter`]/[`Gauge`]/[`Histogram`] reference obtained before the reset,
/// and in particular the per-call-site [`CounterSite`]/[`GaugeSite`]/
/// [`HistogramSite`] caches behind the `counter_add!`-family macros, keep
/// pointing at the live (now zeroed) metric: bumps through a cached handle
/// after `reset()` are visible in the next [`snapshot`]. Intended for
/// tests; the current thread's last-root marker is also cleared.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().expect("counter registry").values() {
        c.reset();
    }
    for g in reg.gauges.lock().expect("gauge registry").values() {
        g.reset();
    }
    for h in reg.histograms.lock().expect("histogram registry").values() {
        h.reset();
    }
    {
        let mut ring = reg.ring.lock().expect("span ring");
        ring.events.clear();
        ring.dropped = 0;
    }
    reg.next_span_id.store(0, Ordering::Relaxed);
    LAST_ROOT.with(|c| c.set(0));
}
