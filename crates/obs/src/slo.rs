//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] states an objective over metrics held in a
//! [`SeriesRecorder`](crate::SeriesRecorder): either a counter ratio
//! ("`gateway.frames.shed / gateway.frames.total ≤ 0.1%`") or a histogram
//! quantile ("`p99(omi.step.latency_ms) ≤ deadline_ms`"). The
//! [`SloEngine`] evaluates every spec once per captured window with the
//! Google-SRE multi-window burn-rate recipe: a *fast* burn over the last
//! window pages immediately on severe budget burn, and a *slow* burn over
//! the last N windows warns on sustained moderate burn. Both alerts are
//! edge-triggered — one [`SloAlert`] when the condition starts holding,
//! re-armed only after a window where it does not.
//!
//! Burn rate is `error_ratio / error_budget`. A latency-quantile objective
//! is evaluated in the same ratio form: with objective `q`, the budget is
//! `1 − q` and the error ratio is the fraction of observations *not*
//! provably at or below the limit
//! ([`FixedHistogram::count_le`](crate::FixedHistogram::count_le)), which
//! is exact under the fixed bucket layouts and strictly monotone in load —
//! unlike comparing a coarse bucket-boundary quantile against the limit.
//!
//! Everything here is plain deterministic data (no clock, no registry
//! access), compiled regardless of the `enabled` feature, so the serving
//! gateway can run an `SloEngine` off its own deterministic window
//! counters in an obs-off build and produce byte-stable alerts.

use serde::{Deserialize, Serialize};

use crate::timeseries::SeriesRecorder;

/// Default fast-burn threshold: 14.4× burn over one window consumes a
/// 30-day budget in 2 days — the classic page threshold.
pub const DEFAULT_FAST_BURN: f64 = 14.4;
/// Default slow-burn threshold: 6× sustained burn — the classic warn
/// (ticket) threshold.
pub const DEFAULT_SLOW_BURN: f64 = 6.0;
/// Default long-window span, in captured windows.
pub const DEFAULT_SLOW_WINDOWS: usize = 12;

/// What an SLO measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SloObjective {
    /// `bad / total ≤ budget`, both counters. Windows where `total` has no
    /// increments are skipped (no traffic, no burn).
    ErrorRatio {
        bad: String,
        total: String,
        budget: f64,
    },
    /// `q`-quantile of `histogram` must stay `≤ limit`. Evaluated as an
    /// error ratio with budget `1 − q` (see the module docs).
    LatencyQuantile {
        histogram: String,
        q: f64,
        limit: f64,
    },
}

/// A declarative service-level objective plus its burn-rate thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    pub name: String,
    pub objective: SloObjective,
    /// Burn multiple over the last window that fires a [`AlertSeverity::Page`].
    pub fast_burn: f64,
    /// Burn multiple over the last `slow_windows` that fires a
    /// [`AlertSeverity::Warn`].
    pub slow_burn: f64,
    /// Long-window span; the slow condition is not evaluated until the
    /// recorder has captured this many windows.
    pub slow_windows: usize,
}

impl SloSpec {
    /// Counter-ratio SLO, e.g. `error_ratio("gateway.shed-ratio",
    /// "gateway.frames.shed", "gateway.frames.total", 0.001)`.
    pub fn error_ratio(
        name: impl Into<String>,
        bad: impl Into<String>,
        total: impl Into<String>,
        budget: f64,
    ) -> Self {
        assert!(budget > 0.0, "error budget must be positive");
        Self {
            name: name.into(),
            objective: SloObjective::ErrorRatio {
                bad: bad.into(),
                total: total.into(),
                budget,
            },
            fast_burn: DEFAULT_FAST_BURN,
            slow_burn: DEFAULT_SLOW_BURN,
            slow_windows: DEFAULT_SLOW_WINDOWS,
        }
    }

    /// Histogram-quantile SLO, e.g. `quantile("omi.step-p99",
    /// "omi.step.latency_ms", 0.99, 100.0)`.
    pub fn quantile(
        name: impl Into<String>,
        histogram: impl Into<String>,
        q: f64,
        limit: f64,
    ) -> Self {
        assert!((0.0..1.0).contains(&q), "quantile must be in [0, 1)");
        Self {
            name: name.into(),
            objective: SloObjective::LatencyQuantile {
                histogram: histogram.into(),
                q,
                limit,
            },
            fast_burn: DEFAULT_FAST_BURN,
            slow_burn: DEFAULT_SLOW_BURN,
            slow_windows: DEFAULT_SLOW_WINDOWS,
        }
    }

    pub fn with_burn_rates(mut self, fast: f64, slow: f64) -> Self {
        self.fast_burn = fast;
        self.slow_burn = slow;
        self
    }

    pub fn with_slow_windows(mut self, windows: usize) -> Self {
        self.slow_windows = windows.max(1);
        self
    }

    /// The objective's error budget (for `LatencyQuantile`, `1 − q`).
    pub fn budget(&self) -> f64 {
        match &self.objective {
            SloObjective::ErrorRatio { budget, .. } => *budget,
            SloObjective::LatencyQuantile { q, .. } => 1.0 - q,
        }
    }

    /// Error ratio over the last `n_windows`, or `None` when the span saw
    /// no traffic.
    fn error_ratio_over(&self, series: &SeriesRecorder, n_windows: usize) -> Option<f64> {
        match &self.objective {
            SloObjective::ErrorRatio { bad, total, .. } => {
                let total = series.delta(total, n_windows);
                if total == 0 {
                    return None;
                }
                let bad = series.delta(bad, n_windows);
                Some(bad as f64 / total as f64)
            }
            SloObjective::LatencyQuantile { histogram, limit, .. } => {
                let merged = series.merged_over(histogram, n_windows)?;
                if merged.count() == 0 {
                    return None;
                }
                let good = merged.count_le(*limit);
                Some(1.0 - good as f64 / merged.count() as f64)
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertSeverity {
    /// Fast-burn over the last window: wake someone up.
    Page,
    /// Slow-burn over the long window: file a ticket.
    Warn,
}

/// One fired burn-rate alert. Alerts are plain data and compare bytewise
/// (`burn_rate` is derived from integer counter deltas, so identical runs
/// produce identical alerts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloAlert {
    /// `SloSpec::name` of the violated objective.
    pub slo: String,
    pub severity: AlertSeverity,
    /// Capture index ([`SeriesRecorder::total_windows`]) when the alert
    /// fired, 1-based.
    pub window: u64,
    /// Burn multiple observed (`error_ratio / budget`).
    pub burn_rate: f64,
    pub budget: f64,
    /// Human-oriented summary, e.g. `fast burn 22.1x >= 14.4x over 1 window`.
    pub detail: String,
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct SpecState {
    fast_active: bool,
    slow_active: bool,
}

/// Evaluates a set of [`SloSpec`]s against a [`SeriesRecorder`], firing
/// edge-triggered multi-window burn-rate alerts.
///
/// # Examples
///
/// ```
/// use anole_obs::{CounterSample, MetricsSnapshot, SeriesRecorder, SloEngine, SloSpec};
///
/// let mut series = SeriesRecorder::new(16);
/// let mut engine = SloEngine::new(vec![SloSpec::error_ratio(
///     "shed-ratio", "frames.shed", "frames.total", 0.001,
/// )]);
/// for (tick, shed, total) in [(0, 0, 100), (1, 50, 200)] {
///     let snap = MetricsSnapshot {
///         counters: vec![
///             CounterSample { name: "frames.shed".into(), value: shed },
///             CounterSample { name: "frames.total".into(), value: total },
///         ],
///         ..MetricsSnapshot::default()
///     };
///     series.capture(tick, &snap);
///     engine.evaluate(&series);
/// }
/// assert_eq!(engine.pages(), 1); // 50% shed vs 0.1% budget = 500x burn
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    state: Vec<SpecState>,
    alerts: Vec<SloAlert>,
}

impl SloEngine {
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let state = vec![SpecState::default(); specs.len()];
        Self {
            specs,
            state,
            alerts: Vec::new(),
        }
    }

    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Evaluates every spec against the recorder's current state and
    /// returns the alerts that fired *this* call (all alerts remain
    /// available via [`alerts`](Self::alerts)). Call once per captured
    /// window.
    pub fn evaluate(&mut self, series: &SeriesRecorder) -> &[SloAlert] {
        let first_new = self.alerts.len();
        let window = series.total_windows();
        for (spec, state) in self.specs.iter().zip(&mut self.state) {
            let budget = spec.budget();

            let fast_burn = spec
                .error_ratio_over(series, 1)
                .map(|ratio| ratio / budget);
            match fast_burn {
                Some(burn) if burn >= spec.fast_burn => {
                    if !state.fast_active {
                        state.fast_active = true;
                        self.alerts.push(SloAlert {
                            slo: spec.name.clone(),
                            severity: AlertSeverity::Page,
                            window,
                            burn_rate: burn,
                            budget,
                            detail: format!(
                                "fast burn {burn:.1}x >= {:.1}x over 1 window",
                                spec.fast_burn
                            ),
                        });
                    }
                }
                Some(_) => state.fast_active = false,
                // No traffic: keep the previous edge state.
                None => {}
            }

            if series.total_windows() >= spec.slow_windows as u64 {
                let slow_burn = spec
                    .error_ratio_over(series, spec.slow_windows)
                    .map(|ratio| ratio / budget);
                match slow_burn {
                    Some(burn) if burn >= spec.slow_burn => {
                        if !state.slow_active {
                            state.slow_active = true;
                            self.alerts.push(SloAlert {
                                slo: spec.name.clone(),
                                severity: AlertSeverity::Warn,
                                window,
                                burn_rate: burn,
                                budget,
                                detail: format!(
                                    "slow burn {burn:.1}x >= {:.1}x over {} windows",
                                    spec.slow_burn, spec.slow_windows
                                ),
                            });
                        }
                    }
                    Some(_) => state.slow_active = false,
                    None => {}
                }
            }
        }
        &self.alerts[first_new..]
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Count of [`AlertSeverity::Page`] alerts fired so far.
    pub fn pages(&self) -> usize {
        self.alerts
            .iter()
            .filter(|a| a.severity == AlertSeverity::Page)
            .count()
    }

    /// Count of [`AlertSeverity::Warn`] alerts fired so far.
    pub fn warns(&self) -> usize {
        self.alerts
            .iter()
            .filter(|a| a.severity == AlertSeverity::Warn)
            .count()
    }

    /// Whether any spec's fast-burn condition held at the last evaluation.
    pub fn page_active(&self) -> bool {
        self.state.iter().any(|s| s.fast_active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{CounterSample, FixedHistogram, HistogramSample, MetricsSnapshot};

    fn ratio_snap(shed: u64, total: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                CounterSample { name: "gw.shed".into(), value: shed },
                CounterSample { name: "gw.total".into(), value: total },
            ],
            ..MetricsSnapshot::default()
        }
    }

    #[test]
    fn slo_fast_burn_pages_once_per_edge() {
        let mut series = SeriesRecorder::new(16);
        let spec = SloSpec::error_ratio("shed", "gw.shed", "gw.total", 0.01)
            .with_burn_rates(10.0, 5.0);
        let mut engine = SloEngine::new(vec![spec]);

        // Window 1: clean. Window 2+3: 50% shed (burn 50x). Window 4: clean.
        // Window 5: bad again — a second page.
        let mut shed = 0;
        let mut total = 0;
        let steps = [(0, 100), (50, 100), (50, 100), (0, 100), (50, 100)];
        let mut fired = Vec::new();
        for (i, (s, t)) in steps.iter().enumerate() {
            shed += s;
            total += t;
            series.capture(i as u64, &ratio_snap(shed, total));
            fired.push(engine.evaluate(&series).to_vec());
        }
        assert!(fired[0].is_empty());
        assert_eq!(fired[1].len(), 1);
        assert_eq!(fired[1][0].severity, AlertSeverity::Page);
        assert_eq!(fired[1][0].window, 2);
        assert!((fired[1][0].burn_rate - 50.0).abs() < 1e-9);
        assert!(fired[2].is_empty(), "still burning: no re-fire");
        assert!(fired[3].is_empty());
        assert_eq!(fired[4].len(), 1, "re-armed after the clean window");
        assert_eq!(engine.pages(), 2);
        assert!(engine.page_active());
    }

    #[test]
    fn slo_slow_burn_warns_only_after_the_long_window_fills() {
        let mut series = SeriesRecorder::new(16);
        // 5% shed every window vs a 1% budget = sustained 5x burn: below
        // the 10x fast threshold, at the 5x slow threshold.
        let spec = SloSpec::error_ratio("shed", "gw.shed", "gw.total", 0.01)
            .with_burn_rates(10.0, 5.0)
            .with_slow_windows(4);
        let mut engine = SloEngine::new(vec![spec]);
        let mut warns_at = Vec::new();
        for w in 0..6u64 {
            series.capture(w, &ratio_snap((w + 1) * 5, (w + 1) * 100));
            if engine.evaluate(&series).iter().any(|a| a.severity == AlertSeverity::Warn) {
                warns_at.push(w + 1);
            }
        }
        assert_eq!(warns_at, vec![4], "warn fires exactly when window 4 fills, once");
        assert_eq!(engine.pages(), 0);
        assert_eq!(engine.warns(), 1);
    }

    #[test]
    fn slo_quiet_windows_do_not_burn() {
        let mut series = SeriesRecorder::new(16);
        let spec = SloSpec::error_ratio("shed", "gw.shed", "gw.total", 0.01);
        let mut engine = SloEngine::new(vec![spec]);
        for w in 0..5u64 {
            series.capture(w, &ratio_snap(0, 0));
            assert!(engine.evaluate(&series).is_empty());
        }
        assert_eq!(engine.alerts().len(), 0);
        assert!(!engine.page_active());
    }

    #[test]
    fn slo_latency_quantile_burns_on_above_limit_fraction() {
        let bounds = [10.0, 50.0, 100.0];
        let spec = SloSpec::quantile("p99", "lat", 0.99, 50.0).with_burn_rates(14.4, 6.0);
        let mut series = SeriesRecorder::new(16);
        let mut engine = SloEngine::new(vec![spec]);

        let mut h = FixedHistogram::new(&bounds);
        let snap = |h: &FixedHistogram| MetricsSnapshot {
            histograms: vec![HistogramSample { name: "lat".into(), histogram: h.clone() }],
            ..MetricsSnapshot::default()
        };

        // Window 1: 99 fast + 1 slow = 1% above limit vs 1% budget → burn
        // 1x, no page.
        for _ in 0..99 {
            h.record(5.0);
        }
        h.record(80.0);
        series.capture(0, &snap(&h));
        assert!(engine.evaluate(&series).is_empty());

        // Window 2: 20% above limit → burn 20x ≥ 14.4x → page.
        for _ in 0..80 {
            h.record(5.0);
        }
        for _ in 0..20 {
            h.record(80.0);
        }
        series.capture(1, &snap(&h));
        let fired = engine.evaluate(&series);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].severity, AlertSeverity::Page);
        assert!((fired[0].burn_rate - 20.0).abs() < 1e-6);
        assert!((fired[0].budget - 0.01).abs() < 1e-12);
    }

    #[test]
    fn slo_engine_state_round_trips_through_serde() {
        let mut series = SeriesRecorder::new(8);
        let mut engine =
            SloEngine::new(vec![SloSpec::error_ratio("s", "gw.shed", "gw.total", 0.001)]);
        series.capture(0, &ratio_snap(10, 20));
        engine.evaluate(&series);
        let json = serde_json::to_string(&engine).unwrap();
        let back: SloEngine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, engine);
        assert_eq!(back.pages(), 1);
    }
}
