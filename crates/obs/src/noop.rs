//! No-op mirror of the registry API, compiled when the `enabled` feature is
//! off. Every function is an inline empty body and every site type is
//! zero-sized, so instrumented call sites cost nothing: no allocation, no
//! atomics, no branches — engine and trainer outputs stay bit-identical to
//! an uninstrumented build.

use crate::clock::Clock;
use crate::snapshot::MetricsSnapshot;

/// Always `false` in this build: the `enabled` feature is off.
pub const fn enabled() -> bool {
    false
}

#[inline(always)]
pub fn counter_add(_name: &'static str, _v: u64) {}

#[inline(always)]
pub fn gauge_set(_name: &'static str, _v: f64) {}

#[inline(always)]
pub fn histogram_record(_name: &'static str, _bounds: &'static [f64], _v: f64) {}

/// Zero-sized stand-in for the real RAII span guard.
#[derive(Debug)]
pub struct SpanGuard;

impl SpanGuard {
    pub fn id(&self) -> u64 {
        0
    }
}

#[inline(always)]
pub fn span_enter(_name: &'static str) -> SpanGuard {
    SpanGuard
}

#[inline(always)]
pub fn last_root_span_id() -> u64 {
    0
}

#[inline(always)]
pub fn now() -> u64 {
    0
}

#[inline(always)]
pub fn elapsed_ms(_t0: u64) -> f64 {
    0.0
}

pub fn set_clock(_clock: Box<dyn Clock>) {}

pub fn reset() {}

pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot::default()
}

/// No-op mirror of the registry's series capture: records an empty window
/// at tick 0 so recorder-driving loops behave identically (bounded, same
/// window count) whether or not the feature is on.
pub fn capture_series(rec: &mut crate::SeriesRecorder) {
    rec.capture(0, &snapshot());
}

pub fn to_prometheus() -> String {
    snapshot().to_prometheus()
}

pub fn to_json() -> String {
    snapshot().to_json()
}

pub fn render_trace() -> String {
    snapshot().render_trace()
}

#[derive(Debug, Default)]
pub struct CounterSite;

impl CounterSite {
    pub const fn new() -> Self {
        Self
    }

    #[inline(always)]
    pub fn add(&self, _name: &'static str, _v: u64) {}
}

#[derive(Debug, Default)]
pub struct GaugeSite;

impl GaugeSite {
    pub const fn new() -> Self {
        Self
    }

    #[inline(always)]
    pub fn set(&self, _name: &'static str, _v: f64) {}
}

#[derive(Debug, Default)]
pub struct HistogramSite;

impl HistogramSite {
    pub const fn new() -> Self {
        Self
    }

    #[inline(always)]
    pub fn record(&self, _name: &'static str, _bounds: &'static [f64], _v: f64) {}
}
