//! `anole-obs` — unified metrics & span tracing for the Anole reproduction.
//!
//! A dependency-free observability layer (no `tracing`/`metrics` crates):
//!
//! - a process-global registry of named **counters** (relaxed atomics),
//!   **gauges** (atomic `f64` bits), and fixed-bucket **histograms**
//!   (sharded atomic accumulation, deterministic across thread counts);
//! - a **span** API ([`span!`]) recording hierarchical enter/exit events
//!   into a bounded ring buffer, timed by an injectable [`Clock`]
//!   ([`MonotonicClock`] in production, [`TickClock`] for bit-stable test
//!   traces);
//! - exporters: Prometheus text exposition ([`to_prometheus`]), a JSON
//!   snapshot ([`to_json`] / [`MetricsSnapshot`]), and a flamegraph-style
//!   `trace.txt` rendering ([`render_trace`]).
//!
//! The whole layer compiles to inline no-ops unless the `enabled` feature
//! is on; downstream crates re-expose it as `obs = ["anole-obs/enabled"]`
//! so instrumented call sites stay unconditional. Metrics are strictly
//! passive: nothing read from the registry ever feeds back into
//! computation, so enabling `obs` cannot change engine or trainer outputs.
//!
//! ```
//! let _span = anole_obs::span!("osp.tcm.train_candidate");
//! anole_obs::counter_add!("osp.tcm.candidates_trained", 1);
//! anole_obs::histogram_record!("omi.step.latency_ms", anole_obs::LATENCY_MS_BOUNDS, 1.25);
//! let snap = anole_obs::snapshot();
//! assert!(snap.metric_names().len() <= 2); // empty when `enabled` is off
//! ```

mod clock;
mod slo;
mod snapshot;
mod timeseries;

pub use clock::{Clock, MonotonicClock, TickClock};
pub use slo::{
    AlertSeverity, SloAlert, SloEngine, SloObjective, SloSpec, DEFAULT_FAST_BURN,
    DEFAULT_SLOW_BURN, DEFAULT_SLOW_WINDOWS,
};
pub use snapshot::{
    CounterSample, FixedHistogram, GaugeSample, HistogramSample, MetricsSnapshot, SpanSample,
};
pub use timeseries::SeriesRecorder;

#[cfg(feature = "enabled")]
mod registry;
#[cfg(feature = "enabled")]
pub use registry::{
    capture_series, counter, counter_add, elapsed_ms, enabled, gauge, gauge_set, histogram,
    histogram_record, last_root_span_id, now, render_trace, reset, set_clock, snapshot,
    span_enter, to_json, to_prometheus, Counter, CounterSite, Gauge, GaugeSite, Histogram,
    HistogramSite, SpanGuard,
};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{
    capture_series, counter_add, elapsed_ms, enabled, gauge_set, histogram_record,
    last_root_span_id, now, render_trace, reset, set_clock, snapshot, span_enter, to_json,
    to_prometheus, CounterSite, GaugeSite, HistogramSite, SpanGuard,
};

/// Bucket bounds (ms) for per-frame serving latency histograms.
pub const LATENCY_MS_BOUNDS: &[f64] = &[
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
];

/// Bucket bounds (ms) for coarse stage-duration histograms.
pub const DURATION_MS_BOUNDS: &[f64] = &[
    1.0, 5.0, 25.0, 100.0, 500.0, 2_500.0, 10_000.0, 60_000.0,
];

/// Bucket bounds for the 4-tier fallback depth (0..=2; depth 3 lands in the
/// overflow bucket).
pub const DEPTH_BOUNDS: &[f64] = &[0.0, 1.0, 2.0];

/// Open a named span on the current thread; the returned guard records the
/// exit event when dropped. Bind it: `let _span = span!("omi.engine.step");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_enter($name)
    };
}

/// Add to a named counter with a per-call-site cached handle: the registry
/// lookup happens once per site, every later hit is one relaxed atomic add.
/// Compiles to nothing when the `enabled` feature is off.
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $v:expr) => {{
        static __OBS_SITE: $crate::CounterSite = $crate::CounterSite::new();
        __OBS_SITE.add($name, $v);
    }};
}

/// Set a named gauge with a per-call-site cached handle.
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $v:expr) => {{
        static __OBS_SITE: $crate::GaugeSite = $crate::GaugeSite::new();
        __OBS_SITE.set($name, $v);
    }};
}

/// Record into a named histogram with a per-call-site cached handle.
#[macro_export]
macro_rules! histogram_record {
    ($name:expr, $bounds:expr, $v:expr) => {{
        static __OBS_SITE: $crate::HistogramSite = $crate::HistogramSite::new();
        __OBS_SITE.record($name, $bounds, $v);
    }};
}
