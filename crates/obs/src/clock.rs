//! Injectable time sources for span timing.
//!
//! Spans never read the wall clock directly: they ask the registry's
//! installed [`Clock`] for a `u64` tick. Production uses [`MonotonicClock`]
//! (nanoseconds since process start); deterministic tests install a
//! [`TickClock`] so traces are bit-stable across runs and machines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic tick source. Ticks are opaque `u64`s; only differences are
/// meaningful. Implementations must be cheap and thread-safe.
pub trait Clock: Send + Sync {
    /// Current tick. Must be monotonically non-decreasing per thread.
    fn now(&self) -> u64;
}

/// Wall-clock-backed monotonic source: nanoseconds since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic tick source: every `now()` call returns the next integer.
/// With a `TickClock` installed, span enter/exit ticks depend only on the
/// order of clock reads, so single-threaded traces are bit-identical across
/// runs.
#[derive(Debug, Default)]
pub struct TickClock {
    next: AtomicU64,
}

impl TickClock {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for TickClock {
    fn now(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_non_decreasing() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn tick_clock_counts_up_from_zero() {
        let c = TickClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.now(), 1);
        assert_eq!(c.now(), 2);
    }
}
