//! Windowed time-series rings over metric snapshots.
//!
//! The registry (and [`MetricsSnapshot`]) is *cumulative*: it answers "how
//! many frames were shed since the process started", never "how many were
//! shed in the last five scheduling windows". A [`SeriesRecorder`] closes
//! that gap: [`SeriesRecorder::capture`] diffs consecutive snapshots at a
//! fixed cadence (the serving gateway drives it once per virtual-time
//! scheduling window; standalone users call
//! [`capture_series`](crate::capture_series), which stamps windows with the
//! injectable [`Clock`](crate::Clock)) and stores the per-window deltas in
//! bounded per-metric rings.
//!
//! Everything here is plain serde-able data, compiled regardless of the
//! `enabled` feature, so the gateway can feed a recorder from its own
//! deterministic counters even in an obs-off build. Capture is strictly
//! passive: nothing read from a recorder feeds back into computation.
//!
//! Invariants:
//!
//! * every per-metric ring holds exactly [`SeriesRecorder::windows`] entries
//!   (metrics that appear mid-run are back-filled with zeros, metrics that
//!   go quiet keep receiving zero deltas), so window `i` of any two series
//!   refers to the same capture;
//! * rings are bounded by the capacity chosen at construction — a recorder
//!   over a 100k-window run holds the last `capacity` windows, never the
//!   whole history;
//! * counter deltas saturate at zero: an external `reset()` between windows
//!   shows up as the post-reset total, not an underflow.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::snapshot::{FixedHistogram, MetricsSnapshot};

/// Per-window deltas of one counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct CounterSeries {
    /// Cumulative total at the last capture (delta baseline).
    last_total: u64,
    deltas: VecDeque<u64>,
}

/// Per-window last-written values of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GaugeSeries {
    values: VecDeque<f64>,
}

/// Per-window delta histograms of one histogram metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct HistogramSeries {
    /// Cumulative histogram at the last capture (delta baseline).
    last: FixedHistogram,
    deltas: VecDeque<FixedHistogram>,
}

/// Bounded per-metric rings of fixed-interval registry deltas, with
/// windowed rate/delta/quantile queries and JSON / Prometheus-range
/// exports. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use anole_obs::{CounterSample, MetricsSnapshot, SeriesRecorder};
///
/// let mut rec = SeriesRecorder::new(8);
/// for (tick, total) in [(0u64, 0u64), (33, 4), (66, 10)] {
///     let snap = MetricsSnapshot {
///         counters: vec![CounterSample { name: "gw.frames".into(), value: total }],
///         ..MetricsSnapshot::default()
///     };
///     rec.capture(tick, &snap);
/// }
/// assert_eq!(rec.delta("gw.frames", 2), 10); // last two windows: 4 + 6
/// assert_eq!(rec.rate("gw.frames", 2), 5.0); // per window
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesRecorder {
    capacity: usize,
    /// Total captures taken, including windows evicted from the rings.
    total_windows: u64,
    /// Clock tick of each retained window, oldest first.
    ticks: VecDeque<u64>,
    counters: BTreeMap<String, CounterSeries>,
    gauges: BTreeMap<String, GaugeSeries>,
    histograms: BTreeMap<String, HistogramSeries>,
}

impl SeriesRecorder {
    /// Creates a recorder retaining the last `capacity` windows per metric.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a series recorder needs at least one window");
        Self {
            capacity,
            total_windows: 0,
            ticks: VecDeque::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Captures one window: diffs `snap` against the previous capture and
    /// pushes the delta into every metric's ring. `tick` stamps the window
    /// (the gateway passes its virtual-time milliseconds;
    /// [`capture_series`](crate::capture_series) passes the injected
    /// clock's tick).
    pub fn capture(&mut self, tick: u64, snap: &MetricsSnapshot) {
        self.total_windows += 1;
        self.ticks.push_back(tick);
        if self.ticks.len() > self.capacity {
            self.ticks.pop_front();
        }
        let backfill = self.ticks.len() - 1;
        let cap = self.capacity;

        for c in &snap.counters {
            self.counters.entry(c.name.clone()).or_insert_with(|| CounterSeries {
                last_total: 0,
                deltas: std::iter::repeat_n(0, backfill).collect(),
            });
        }
        let lookup: BTreeMap<&str, u64> =
            snap.counters.iter().map(|c| (c.name.as_str(), c.value)).collect();
        for (name, series) in &mut self.counters {
            let delta = match lookup.get(name.as_str()) {
                // A total below the baseline means the registry was reset
                // between captures; the post-reset total is the delta.
                Some(&total) if total < series.last_total => {
                    series.last_total = total;
                    total
                }
                Some(&total) => {
                    let d = total - series.last_total;
                    series.last_total = total;
                    d
                }
                None => 0,
            };
            series.deltas.push_back(delta);
            while series.deltas.len() > cap {
                series.deltas.pop_front();
            }
        }

        for g in &snap.gauges {
            self.gauges.entry(g.name.clone()).or_insert_with(|| GaugeSeries {
                values: std::iter::repeat_n(0.0, backfill).collect(),
            });
        }
        let lookup: BTreeMap<&str, f64> =
            snap.gauges.iter().map(|g| (g.name.as_str(), g.value)).collect();
        for (name, series) in &mut self.gauges {
            let value = lookup
                .get(name.as_str())
                .copied()
                .or_else(|| series.values.back().copied())
                .unwrap_or(0.0);
            series.values.push_back(value);
            while series.values.len() > cap {
                series.values.pop_front();
            }
        }

        for h in &snap.histograms {
            self.histograms.entry(h.name.clone()).or_insert_with(|| HistogramSeries {
                last: FixedHistogram::new(h.histogram.bounds()),
                deltas: std::iter::repeat_n(FixedHistogram::new(h.histogram.bounds()), backfill)
                    .collect(),
            });
        }
        for (name, series) in &mut self.histograms {
            let delta = match snap.histograms.iter().find(|h| h.name == *name) {
                Some(sample) => {
                    let d = histogram_delta(&series.last, &sample.histogram);
                    series.last = sample.histogram.clone();
                    d
                }
                None => FixedHistogram::new(series.last.bounds()),
            };
            series.deltas.push_back(delta);
            while series.deltas.len() > cap {
                series.deltas.pop_front();
            }
        }
    }

    /// Ring capacity in windows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Windows currently retained (≤ capacity).
    pub fn windows(&self) -> usize {
        self.ticks.len()
    }

    /// Total captures taken, including windows evicted from the rings.
    pub fn total_windows(&self) -> u64 {
        self.total_windows
    }

    /// Clock ticks of the retained windows, oldest first.
    pub fn ticks(&self) -> impl Iterator<Item = u64> + '_ {
        self.ticks.iter().copied()
    }

    /// Distinct metric names with a series, sorted.
    pub fn metric_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::as_str)
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Sum of a counter's deltas over the last `n_windows` retained windows
    /// (clamped to what the ring holds). Zero for unknown metrics.
    pub fn delta(&self, name: &str, n_windows: usize) -> u64 {
        let Some(series) = self.counters.get(name) else { return 0 };
        series.deltas.iter().rev().take(n_windows).sum()
    }

    /// Mean per-window rate of a counter over the last `n_windows` windows:
    /// `delta / min(n_windows, windows retained)`. Multiply by
    /// `1000 / window_ms` for an events-per-second reading.
    pub fn rate(&self, name: &str, n_windows: usize) -> f64 {
        let span = n_windows.min(self.windows()).max(1);
        self.delta(name, n_windows) as f64 / span as f64
    }

    /// A counter's per-window deltas, oldest first (for sparklines).
    pub fn counter_deltas(&self, name: &str) -> Option<Vec<u64>> {
        self.counters.get(name).map(|s| s.deltas.iter().copied().collect())
    }

    /// A gauge's last captured value.
    pub fn gauge_last(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).and_then(|s| s.values.back().copied())
    }

    /// Merge of a histogram's delta windows over the last `n_windows`
    /// windows. `None` for unknown metrics.
    pub fn merged_over(&self, name: &str, n_windows: usize) -> Option<FixedHistogram> {
        let series = self.histograms.get(name)?;
        let mut merged = FixedHistogram::new(series.last.bounds());
        for delta in series.deltas.iter().rev().take(n_windows) {
            merged.merge(delta);
        }
        Some(merged)
    }

    /// Quantile of a histogram metric over observations recorded in the
    /// last `n_windows` windows (histogram-merge, not an average of window
    /// quantiles). Zero for unknown or empty series.
    pub fn quantile_over(&self, name: &str, n_windows: usize, q: f64) -> f64 {
        self.merged_over(name, n_windows).map_or(0.0, |h| h.quantile(q))
    }

    /// Pretty-printed JSON export (exact serde round-trip of `self`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("series recorder serializes")
    }

    /// Prometheus `query_range`-style matrix export: one result entry per
    /// series, values as `[tick, value]` pairs over the retained windows.
    /// Counters export reconstructed cumulative totals, gauges their raw
    /// values, histograms synthetic `_p50`/`_p99`/`_count` series.
    pub fn to_prometheus_range(&self) -> String {
        let mut result = Vec::new();
        let ticks: Vec<u64> = self.ticks.iter().copied().collect();
        for (name, series) in &self.counters {
            let in_ring: u64 = series.deltas.iter().sum();
            let mut running = series.last_total - in_ring.min(series.last_total);
            let values: Vec<serde_json::Value> = ticks
                .iter()
                .zip(series.deltas.iter())
                .map(|(&t, &d)| {
                    running += d;
                    serde_json::json!([t, running.to_string()])
                })
                .collect();
            result.push(matrix_entry(name, values));
        }
        for (name, series) in &self.gauges {
            let values: Vec<serde_json::Value> = ticks
                .iter()
                .zip(series.values.iter())
                .map(|(&t, &v)| serde_json::json!([t, v.to_string()]))
                .collect();
            result.push(matrix_entry(name, values));
        }
        for (name, series) in &self.histograms {
            for (suffix, sample) in [
                ("_p50", Quantity::Quantile(0.5)),
                ("_p99", Quantity::Quantile(0.99)),
                ("_count", Quantity::Count),
            ] {
                let values: Vec<serde_json::Value> = ticks
                    .iter()
                    .zip(series.deltas.iter())
                    .map(|(&t, h)| {
                        let v = match sample {
                            Quantity::Quantile(q) => h.quantile(q).to_string(),
                            Quantity::Count => h.count().to_string(),
                        };
                        serde_json::json!([t, v])
                    })
                    .collect();
                result.push(matrix_entry(&format!("{name}{suffix}"), values));
            }
        }
        serde_json::to_string_pretty(&serde_json::json!({
            "status": "success",
            "data": { "resultType": "matrix", "result": result },
        }))
        .expect("range matrix serializes")
    }
}

#[derive(Clone, Copy)]
enum Quantity {
    Quantile(f64),
    Count,
}

fn matrix_entry(name: &str, values: Vec<serde_json::Value>) -> serde_json::Value {
    serde_json::json!({
        "metric": { "__name__": name.replace(['.', '-'], "_") },
        "values": values,
    })
}

/// Bucket-wise difference `current − last` of two cumulative histograms.
/// Falls back to `current` whole when the layouts differ (re-registration)
/// or any bucket went backwards (reset between captures).
fn histogram_delta(last: &FixedHistogram, current: &FixedHistogram) -> FixedHistogram {
    if last.bounds() != current.bounds()
        || last.counts().iter().zip(current.counts()).any(|(l, c)| c < l)
    {
        return current.clone();
    }
    let counts: Vec<u64> =
        current.counts().iter().zip(last.counts()).map(|(c, l)| c - l).collect();
    FixedHistogram::from_parts(
        current.bounds(),
        counts,
        current.sum_micros() - last.sum_micros(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{CounterSample, GaugeSample, HistogramSample};

    fn snap_with(
        counters: &[(&str, u64)],
        gauges: &[(&str, f64)],
        hists: &[(&str, FixedHistogram)],
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: counters
                .iter()
                .map(|&(n, v)| CounterSample { name: n.into(), value: v })
                .collect(),
            gauges: gauges
                .iter()
                .map(|&(n, v)| GaugeSample { name: n.into(), value: v })
                .collect(),
            histograms: hists
                .iter()
                .map(|(n, h)| HistogramSample { name: (*n).into(), histogram: h.clone() })
                .collect(),
            ..MetricsSnapshot::default()
        }
    }

    #[test]
    fn timeseries_counter_deltas_and_rates() {
        let mut rec = SeriesRecorder::new(4);
        for (tick, total) in [(0, 0), (33, 5), (66, 5), (99, 17)] {
            rec.capture(tick, &snap_with(&[("a.b", total)], &[], &[]));
        }
        assert_eq!(rec.windows(), 4);
        assert_eq!(rec.counter_deltas("a.b").unwrap(), vec![0, 5, 0, 12]);
        assert_eq!(rec.delta("a.b", 1), 12);
        assert_eq!(rec.delta("a.b", 3), 17);
        assert_eq!(rec.delta("a.b", 100), 17);
        assert_eq!(rec.rate("a.b", 2), 6.0);
        assert_eq!(rec.delta("missing", 4), 0);
        assert_eq!(rec.ticks().collect::<Vec<_>>(), vec![0, 33, 66, 99]);
    }

    #[test]
    fn timeseries_rings_are_bounded_and_aligned() {
        let mut rec = SeriesRecorder::new(3);
        for i in 0..10u64 {
            let mut counters = vec![("steady", i * 2)];
            // `late` only exists from window 5 on; its ring must stay
            // aligned (back-filled) with the others.
            if i >= 5 {
                counters.push(("late", i));
            }
            rec.capture(i, &snap_with(&counters, &[("g", i as f64)], &[]));
        }
        assert_eq!(rec.windows(), 3);
        assert_eq!(rec.total_windows(), 10);
        assert_eq!(rec.counter_deltas("steady").unwrap().len(), 3);
        assert_eq!(rec.counter_deltas("late").unwrap().len(), 3);
        assert_eq!(rec.counter_deltas("late").unwrap(), vec![1, 1, 1]);
        assert_eq!(rec.gauge_last("g"), Some(9.0));
    }

    #[test]
    fn timeseries_counter_reset_saturates_instead_of_underflowing() {
        let mut rec = SeriesRecorder::new(8);
        rec.capture(0, &snap_with(&[("c", 100)], &[], &[]));
        // Registry reset: the total went backwards.
        rec.capture(1, &snap_with(&[("c", 3)], &[], &[]));
        assert_eq!(rec.counter_deltas("c").unwrap(), vec![100, 3]);
    }

    #[test]
    fn timeseries_quantile_over_merges_windows() {
        let bounds = [1.0, 5.0, 10.0];
        let mut cumulative = FixedHistogram::new(&bounds);
        let mut rec = SeriesRecorder::new(8);
        rec.capture(0, &snap_with(&[], &[], &[("lat", cumulative.clone())]));
        // Window 1: 10 fast observations.
        for _ in 0..10 {
            cumulative.record(0.5);
        }
        rec.capture(1, &snap_with(&[], &[], &[("lat", cumulative.clone())]));
        // Window 2: 10 slow observations.
        for _ in 0..10 {
            cumulative.record(7.0);
        }
        rec.capture(2, &snap_with(&[], &[], &[("lat", cumulative.clone())]));
        // Last window alone is all-slow; merged over both it is mixed.
        assert_eq!(rec.quantile_over("lat", 1, 0.5), 10.0);
        assert_eq!(rec.quantile_over("lat", 2, 0.5), 1.0);
        assert_eq!(rec.quantile_over("lat", 2, 0.99), 10.0);
        assert_eq!(rec.merged_over("lat", 2).unwrap().count(), 20);
        assert_eq!(rec.quantile_over("missing", 2, 0.5), 0.0);
    }

    #[test]
    fn timeseries_exports_round_trip_and_render() {
        let mut h = FixedHistogram::new(&[1.0, 2.0]);
        h.record(0.5);
        let mut rec = SeriesRecorder::new(4);
        rec.capture(10, &snap_with(&[("c.x", 2)], &[("g-y", 1.5)], &[("h.z", h)]));
        let json = rec.to_json();
        let back: SeriesRecorder = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
        let range = rec.to_prometheus_range();
        assert!(range.contains("\"resultType\": \"matrix\""));
        assert!(range.contains("c_x"));
        assert!(range.contains("g_y"));
        assert!(range.contains("h_z_p99"));
        assert!(range.contains("h_z_count"));
    }
}
