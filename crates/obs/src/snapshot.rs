//! Plain-data metric types and exporters.
//!
//! Everything in this module is compiled regardless of the `enabled`
//! feature: [`FixedHistogram`] doubles as the merge target for the sharded
//! atomic histograms *and* as a standalone quantile estimator (used by
//! `Telemetry::summary` in `anole-core`), and [`MetricsSnapshot`] is the
//! serde-serializable export format shared by the JSON, Prometheus, and
//! trace renderers.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Convert a metric value to integer micro-units. Histogram sums are stored
/// as `i64` micro-units so concurrent accumulation is associative (integer
/// addition commutes) and snapshots are deterministic across thread counts.
pub fn to_micros(v: f64) -> i64 {
    (v * 1e6).round() as i64
}

/// A fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// plus one implicit overflow bucket. Counts and the micro-unit sum are plain
/// integers, so merging shards (or telemetry records) in any order yields the
/// same result bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedHistogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` entries; the last is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum_micros: i64,
}

impl FixedHistogram {
    /// Build an empty histogram. `bounds` must be finite and strictly
    /// ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum_micros: 0,
        }
    }

    /// Reassemble a histogram from raw bucket counts (e.g. merged atomic
    /// shards). `counts` must have `bounds.len() + 1` entries.
    pub fn from_parts(bounds: &[f64], counts: Vec<u64>, sum_micros: i64) -> Self {
        assert_eq!(counts.len(), bounds.len() + 1, "bucket count mismatch");
        let count = counts.iter().sum();
        Self {
            bounds: bounds.to_vec(),
            counts,
            count,
            sum_micros,
        }
    }

    /// Index of the bucket receiving `v` under `le` (inclusive upper bound)
    /// semantics; `bounds.len()` is the overflow bucket.
    pub fn bucket_index(bounds: &[f64], v: f64) -> usize {
        bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len())
    }

    pub fn record(&mut self, v: f64) {
        let i = Self::bucket_index(&self.bounds, v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum_micros += to_micros(v);
    }

    /// Merge another histogram into this one. Returns `false` (and leaves
    /// `self` untouched) when the bucket layouts differ.
    pub fn merge(&mut self, other: &FixedHistogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        true
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, overflow last).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum_micros as f64 / 1e6
    }

    pub fn sum_micros(&self) -> i64 {
        self.sum_micros
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }

    /// Observations in buckets whose upper bound is `<= bound` — i.e. the
    /// count provably at or below `bound` given the bucket layout. Used by
    /// the SLO engine to turn a latency limit into an error ratio
    /// (`1 - count_le(limit) / count`).
    pub fn count_le(&self, bound: f64) -> u64 {
        self.bounds
            .iter()
            .zip(&self.counts)
            .take_while(|(b, _)| **b <= bound)
            .map(|(_, c)| c)
            .sum()
    }

    /// Quantile estimate: the upper bound of the bucket containing the
    /// rank-`ceil(q * count)` observation (values in the overflow bucket
    /// report the last finite bound). Coarse by construction but
    /// deterministic and monotone in `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds[i.min(self.bounds.len() - 1)];
            }
        }
        self.bounds[self.bounds.len() - 1]
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    pub name: String,
    pub value: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    pub name: String,
    pub value: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    pub name: String,
    pub histogram: FixedHistogram,
}

/// One span assembled from the enter/exit event ring. `exit_tick` is `None`
/// for spans still open (or whose exit had not been recorded) at snapshot
/// time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanSample {
    pub id: u64,
    /// 0 when the span is a root (no enclosing span on its thread).
    pub parent: u64,
    pub name: String,
    pub depth: u32,
    pub enter_tick: u64,
    pub exit_tick: Option<u64>,
}

/// Point-in-time export of the whole registry: every counter, gauge, and
/// histogram (sorted by name) plus the spans currently held in the bounded
/// event ring.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSample>,
    pub gauges: Vec<GaugeSample>,
    pub histograms: Vec<HistogramSample>,
    pub spans: Vec<SpanSample>,
    /// Enter/exit events evicted from the bounded ring before this snapshot.
    pub dropped_span_events: u64,
}

impl MetricsSnapshot {
    /// Distinct metric names (counters + gauges + histograms), sorted.
    pub fn metric_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .counters
            .iter()
            .map(|c| c.name.as_str())
            .chain(self.gauges.iter().map(|g| g.name.as_str()))
            .chain(self.histograms.iter().map(|h| h.name.as_str()))
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Pretty-printed JSON export (exact serde round-trip of `self`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics snapshot serializes")
    }

    /// Prometheus text exposition format. Metric names have `.`/`-`
    /// replaced with `_`; histograms emit cumulative `_bucket{le=...}`
    /// series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let n = prom_name(&c.name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {}", c.value);
        }
        for g in &self.gauges {
            let n = prom_name(&g.name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {}", g.value);
        }
        for h in &self.histograms {
            let n = prom_name(&h.name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (i, &b) in h.histogram.bounds().iter().enumerate() {
                cumulative += h.histogram.counts()[i];
                let _ = writeln!(out, "{n}_bucket{{le=\"{b}\"}} {cumulative}");
            }
            cumulative += h.histogram.counts().last().copied().unwrap_or(0);
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{n}_sum {}", h.histogram.sum());
            let _ = writeln!(out, "{n}_count {cumulative}");
        }
        out
    }

    /// Compact flamegraph-style text rendering of the span ring: one line
    /// per span, indented two spaces per nesting level, sorted by enter
    /// tick (ties broken by span id).
    pub fn render_trace(&self) -> String {
        let mut spans: Vec<&SpanSample> = self.spans.iter().collect();
        spans.sort_by_key(|s| (s.enter_tick, s.id));
        let mut out = format!(
            "# trace: {} spans (dropped events: {})\n",
            spans.len(),
            self.dropped_span_events
        );
        for s in spans {
            let indent = "  ".repeat(s.depth as usize);
            match s.exit_tick {
                Some(exit) => {
                    let _ = writeln!(
                        out,
                        "{indent}{} id={} parent={} ticks={}",
                        s.name,
                        s.id,
                        s.parent,
                        exit.saturating_sub(s.enter_tick)
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{indent}{} id={} parent={} open",
                        s.name, s.id, s.parent
                    );
                }
            }
        }
        out
    }
}

fn prom_name(name: &str) -> String {
    name.replace(['.', '-'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_uses_inclusive_upper_bounds() {
        let bounds = [1.0, 2.0, 5.0];
        assert_eq!(FixedHistogram::bucket_index(&bounds, 0.5), 0);
        assert_eq!(FixedHistogram::bucket_index(&bounds, 1.0), 0);
        assert_eq!(FixedHistogram::bucket_index(&bounds, 1.5), 1);
        assert_eq!(FixedHistogram::bucket_index(&bounds, 5.0), 2);
        assert_eq!(FixedHistogram::bucket_index(&bounds, 5.1), 3);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let mut h = FixedHistogram::new(&[1.0, 2.0, 5.0, 10.0]);
        for _ in 0..50 {
            h.record(0.5);
        }
        for _ in 0..45 {
            h.record(1.5);
        }
        for _ in 0..5 {
            h.record(7.0);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.95), 2.0);
        assert_eq!(h.quantile(0.99), 10.0);
    }

    #[test]
    fn count_le_sums_buckets_at_or_below_the_bound() {
        let mut h = FixedHistogram::new(&[1.0, 2.0, 5.0]);
        h.record(0.5);
        h.record(1.5);
        h.record(4.0);
        h.record(9.0); // overflow bucket
        assert_eq!(h.count_le(1.0), 1);
        assert_eq!(h.count_le(2.0), 2);
        assert_eq!(h.count_le(3.0), 2);
        assert_eq!(h.count_le(5.0), 3);
        assert_eq!(h.count_le(100.0), 3); // overflow is never provably <= bound
        assert_eq!(h.count_le(0.5), 0);
    }

    #[test]
    fn merge_rejects_mismatched_bounds() {
        let mut a = FixedHistogram::new(&[1.0, 2.0]);
        let b = FixedHistogram::new(&[1.0, 3.0]);
        assert!(!a.merge(&b));
        let mut c = FixedHistogram::new(&[1.0, 2.0]);
        c.record(0.5);
        assert!(a.merge(&c));
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let mut h = FixedHistogram::new(&[1.0, 2.0]);
        h.record(0.5);
        h.record(1.5);
        h.record(9.0);
        let snap = MetricsSnapshot {
            histograms: vec![HistogramSample {
                name: "omi.step.latency_ms".into(),
                histogram: h,
            }],
            ..MetricsSnapshot::default()
        };
        let text = snap.to_prometheus();
        assert!(text.contains("omi_step_latency_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("omi_step_latency_ms_bucket{le=\"2\"} 2"));
        assert!(text.contains("omi_step_latency_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("omi_step_latency_ms_count 3"));
    }
}
