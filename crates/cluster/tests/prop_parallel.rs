//! Bit-identity of parallel k-means across thread counts (threads ∈ {1, 2, 8}).
//!
//! The assignment step, the k-means++ distance refresh, and the silhouette
//! score all fan out per point; the determinism contract promises the full
//! fit (centroids, assignments, inertia, iteration count) is bit-identical
//! for every thread count. The whole sweep lives in one `#[test]` because
//! the parallel config is process-global.

use anole_cluster::{silhouette_score, KMeans, MultiLevelClustering};
use anole_tensor::{
    parallel_config, rng_from_seed, set_parallel_config, Matrix, ParallelConfig, Seed,
};

fn blobs(centers: &[(f32, f32)], per: usize, spread: f32, seed: Seed) -> Matrix {
    let mut rng = rng_from_seed(seed);
    let mut rows = Vec::new();
    for &(cx, cy) in centers {
        for _ in 0..per {
            let jitter = Matrix::random_normal(1, 2, spread, &mut rng);
            rows.push(vec![cx + jitter.get(0, 0), cy + jitter.get(0, 1)]);
        }
    }
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    Matrix::from_rows(&refs).unwrap()
}

#[test]
fn kmeans_fit_is_bit_identical_across_threads() {
    let baseline = parallel_config();
    let pts = blobs(
        &[(0.0, 0.0), (6.0, 6.0), (12.0, 0.0), (0.0, 12.0)],
        40,
        1.5,
        Seed(41),
    );

    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        set_parallel_config(ParallelConfig {
            threads,
            tile: 64,
            min_par_elems: 1,
        });
        let fit = KMeans::new(4).fit(&pts, Seed(42)).unwrap();
        let sil = silhouette_score(&pts, &fit.assignments, 4);
        let levels: Vec<_> = MultiLevelClustering::new(&pts, Seed(43))
            .with_max_k(5)
            .map(|l| l.unwrap())
            .collect();
        runs.push((threads, fit, sil, levels));
    }

    let (_, fit_ref, sil_ref, levels_ref) = &runs[0];
    for (threads, fit, sil, levels) in &runs[1..] {
        assert_eq!(fit, fit_ref, "k-means fit diverged at threads={threads}");
        assert_eq!(
            sil.to_bits(),
            sil_ref.to_bits(),
            "silhouette diverged at threads={threads}"
        );
        assert_eq!(levels, levels_ref, "sweep diverged at threads={threads}");
    }

    set_parallel_config(baseline);
}
