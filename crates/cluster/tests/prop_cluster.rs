//! Property-based tests of k-means and the multi-level sweep.

use anole_cluster::{silhouette_score, KMeans, MultiLevelClustering};
use anole_tensor::{Matrix, Seed};
use proptest::prelude::*;

fn points_strategy(min: usize, max: usize, dim: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(
        proptest::collection::vec(-50.0f32..50.0, dim),
        min..max,
    )
    .prop_map(|rows| {
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs).expect("uniform rows")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Assignments form a partition: every point gets a cluster in range and
    /// every cluster is non-empty after repair.
    #[test]
    fn fit_is_a_partition(points in points_strategy(5, 40, 3), k in 1usize..5, seed in 0u64..100) {
        prop_assume!(points.rows() >= k);
        let fit = KMeans::new(k).fit(&points, Seed(seed)).unwrap();
        prop_assert_eq!(fit.assignments.len(), points.rows());
        prop_assert!(fit.assignments.iter().all(|&a| a < k));
        prop_assert!(fit.cluster_sizes().iter().all(|&s| s > 0));
        prop_assert!(fit.inertia >= 0.0);
    }

    /// Inertia equals the sum of squared point-to-centroid distances.
    #[test]
    fn inertia_matches_definition(points in points_strategy(4, 25, 2), seed in 0u64..100) {
        let k = 2;
        prop_assume!(points.rows() >= k);
        let fit = KMeans::new(k).fit(&points, Seed(seed)).unwrap();
        let mut manual = 0.0f32;
        for i in 0..points.rows() {
            let d = anole_tensor::l2_distance(points.row(i), fit.centroids.row(fit.assignments[i]));
            manual += d * d;
        }
        prop_assert!((manual - fit.inertia).abs() < manual.max(1.0) * 1e-3);
    }

    /// Translating all points translates the centroids but preserves
    /// assignments and inertia.
    #[test]
    fn translation_invariance(points in points_strategy(6, 20, 2), dx in -20.0f32..20.0, seed in 0u64..50) {
        let k = 2;
        prop_assume!(points.rows() >= k);
        let fit = KMeans::new(k).fit(&points, Seed(seed)).unwrap();
        let shifted = points.map(|v| v + dx);
        let fit2 = KMeans::new(k).fit(&shifted, Seed(seed)).unwrap();
        prop_assert_eq!(&fit.assignments, &fit2.assignments);
        prop_assert!((fit.inertia - fit2.inertia).abs() < fit.inertia.max(1.0) * 0.05);
    }

    /// Silhouette stays within [-1, 1] for any clustering.
    #[test]
    fn silhouette_is_bounded(points in points_strategy(4, 25, 2), seed in 0u64..50) {
        let k = 2;
        prop_assume!(points.rows() >= k);
        let fit = KMeans::new(k).fit(&points, Seed(seed)).unwrap();
        let s = silhouette_score(&points, &fit.assignments, k);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    /// The multi-level sweep produces one valid level per k and is
    /// reproducible per level.
    #[test]
    fn sweep_levels_valid(points in points_strategy(4, 12, 2), seed in 0u64..50) {
        let levels: Vec<_> = MultiLevelClustering::new(&points, Seed(seed))
            .map(|l| l.unwrap())
            .collect();
        prop_assert_eq!(levels.len(), points.rows().saturating_sub(1));
        for (i, level) in levels.iter().enumerate() {
            prop_assert_eq!(level.k, i + 2);
            prop_assert_eq!(level.fit.assignments.len(), points.rows());
        }
    }
}
