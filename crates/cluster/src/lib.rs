//! k-means clustering and the multi-level clustering sweep used by Anole's
//! scene partitioning (Algorithm 1 of the paper).
//!
//! The paper embeds all semantic scenes with `M_scene`, then repeatedly
//! clusters the embeddings with k = 2, 3, … and trains one compressed model
//! per cluster, keeping models that validate above a threshold δ. This crate
//! provides the clustering half: deterministic k-means with k-means++
//! initialization, quality measures (inertia, silhouette), and
//! [`MultiLevelClustering`] which yields the cluster assignments for each k
//! in turn.
//!
//! # Examples
//!
//! ```
//! use anole_cluster::KMeans;
//! use anole_tensor::{Matrix, Seed};
//!
//! // Two obvious blobs around (0,0) and (10,10).
//! let points = Matrix::from_rows(&[
//!     &[0.0, 0.1], &[0.1, 0.0], &[10.0, 10.1], &[10.1, 10.0],
//! ])?;
//! let fit = KMeans::new(2).fit(&points, Seed(1))?;
//! assert_eq!(fit.assignments[0], fit.assignments[1]);
//! assert_ne!(fit.assignments[0], fit.assignments[2]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod kmeans;
mod multilevel;

pub use kmeans::{silhouette_score, ClusterError, KMeans, KMeansFit};
pub use multilevel::{ClusterLevel, MultiLevelClustering};
