//! Deterministic k-means (k-means++ initialization, Lloyd iterations).
//!
//! The O(n·k·d) assignment step, the k-means++ distance refresh, and the
//! silhouette score fan out across the [`anole_tensor::parallel_config`]
//! thread pool. Parallelism only partitions per-point computations — each
//! point's nearest centroid is computed exactly as in the serial loop, and
//! scalar reductions (inertia, silhouette total, k-means++ mass) sum the
//! per-point values in ascending point order on one thread — so fits are
//! bit-identical for every thread count.

use anole_tensor::{l2_distance, parallel_config, rng_from_seed, Matrix, Seed};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Error returned by clustering routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// `k` was zero.
    ZeroClusters,
    /// Fewer points than clusters were supplied.
    TooFewPoints {
        /// Number of points available.
        points: usize,
        /// Number of clusters requested.
        k: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::ZeroClusters => write!(f, "k must be at least 1"),
            ClusterError::TooFewPoints { points, k } => {
                write!(f, "cannot form {k} clusters from {points} points")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// k-means configuration.
///
/// # Examples
///
/// ```
/// use anole_cluster::KMeans;
///
/// let km = KMeans::new(3).with_max_iterations(50).with_tolerance(1e-5);
/// assert_eq!(km.k(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    k: usize,
    max_iterations: usize,
    tolerance: f32,
}

/// Result of a k-means fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansFit {
    /// Cluster centroids, one row per cluster.
    pub centroids: Matrix,
    /// Cluster index of each input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f32,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

impl KMeans {
    /// Creates a k-means configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            tolerance: 1e-4,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sets the maximum number of Lloyd iterations (default 100).
    pub fn with_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations;
        self
    }

    /// Sets the centroid-movement convergence tolerance (default 1e-4).
    pub fn with_tolerance(mut self, tolerance: f32) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Clusters `points` (one row per point).
    ///
    /// # Errors
    ///
    /// * [`ClusterError::ZeroClusters`] if `k == 0`.
    /// * [`ClusterError::TooFewPoints`] if `points.rows() < k`.
    #[allow(clippy::needless_range_loop)] // parallel-array indexing is clearest here
    pub fn fit(&self, points: &Matrix, seed: Seed) -> Result<KMeansFit, ClusterError> {
        if self.k == 0 {
            return Err(ClusterError::ZeroClusters);
        }
        if points.rows() < self.k {
            return Err(ClusterError::TooFewPoints {
                points: points.rows(),
                k: self.k,
            });
        }

        let mut rng = rng_from_seed(seed);
        let mut centroids = self.init_pp(points, &mut rng);
        let mut assignments = vec![0usize; points.rows()];
        let mut iterations = 0;
        let threads = assignment_threads(points.rows(), self.k, points.cols());

        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            // Assignment step: each point is independent, so partition points
            // across threads; every assignment is computed exactly as in the
            // serial loop.
            anole_tensor::parallel::for_each_row_chunk(
                &mut assignments,
                1,
                points.rows(),
                threads,
                |range, out| {
                    for (slot, i) in out.iter_mut().zip(range) {
                        *slot = nearest_centroid(points.row(i), &centroids).0;
                    }
                },
            );
            // Update step.
            let mut sums = Matrix::zeros(self.k, points.cols());
            let mut counts = vec![0usize; self.k];
            for (i, &a) in assignments.iter().enumerate() {
                counts[a] += 1;
                for (s, &v) in sums.row_mut(a).iter_mut().zip(points.row(i).iter()) {
                    *s += v;
                }
            }
            let mut movement = 0.0f32;
            for c in 0..self.k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the point farthest from its
                    // centroid, a standard empty-cluster repair.
                    let far = farthest_point(points, &centroids, &assignments);
                    sums.row_mut(c).copy_from_slice(points.row(far));
                    counts[c] = 1;
                }
                let inv = 1.0 / counts[c] as f32;
                let new_row: Vec<f32> = sums.row(c).iter().map(|v| v * inv).collect();
                movement = movement.max(l2_distance(centroids.row(c), &new_row));
                centroids.row_mut(c).copy_from_slice(&new_row);
            }
            if movement < self.tolerance {
                break;
            }
        }

        // Final assignment + inertia: nearest pairs in parallel, then the
        // squared distances summed serially in point order so the reduction
        // is chunk-stable.
        let mut nearest: Vec<(usize, f32)> = vec![(0, 0.0); points.rows()];
        anole_tensor::parallel::for_each_row_chunk(
            &mut nearest,
            1,
            points.rows(),
            threads,
            |range, out| {
                for (slot, i) in out.iter_mut().zip(range) {
                    *slot = nearest_centroid(points.row(i), &centroids);
                }
            },
        );
        let mut inertia = 0.0;
        for (i, &(a, d)) in nearest.iter().enumerate() {
            assignments[i] = a;
            inertia += d * d;
        }

        Ok(KMeansFit {
            centroids,
            assignments,
            inertia,
            iterations,
        })
    }

    /// k-means++ initialization: first centroid uniform, the rest sampled
    /// proportionally to squared distance from the nearest chosen centroid.
    #[allow(clippy::needless_range_loop)]
    fn init_pp<R: Rng + ?Sized>(&self, points: &Matrix, rng: &mut R) -> Matrix {
        let n = points.rows();
        let mut centroids = Matrix::zeros(self.k, points.cols());
        let first = rng.gen_range(0..n);
        centroids.row_mut(0).copy_from_slice(points.row(first));

        let mut d2 = vec![0.0f32; n];
        let threads = assignment_threads(n, self.k, points.cols());
        for c in 1..self.k {
            // Refresh each point's squared distance to its nearest chosen
            // centroid in parallel; the sampling mass is then summed serially
            // in point order, keeping the draw deterministic.
            anole_tensor::parallel::for_each_row_chunk(&mut d2, 1, n, threads, |range, out| {
                for (slot, i) in out.iter_mut().zip(range) {
                    let mut best = f32::INFINITY;
                    for existing in 0..c {
                        let d = l2_distance(points.row(i), centroids.row(existing));
                        best = best.min(d * d);
                    }
                    *slot = best;
                }
            });
            let total: f32 = d2.iter().sum();
            let idx = if total <= f32::EPSILON {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = n - 1;
                for (i, &w) in d2.iter().enumerate() {
                    if target < w {
                        chosen = i;
                        break;
                    }
                    target -= w;
                }
                chosen
            };
            centroids.row_mut(c).copy_from_slice(points.row(idx));
        }
        centroids
    }
}

impl KMeansFit {
    /// Assigns a new point to its nearest centroid.
    ///
    /// # Panics
    ///
    /// Panics if `point` does not match the centroid dimensionality.
    pub fn predict(&self, point: &[f32]) -> usize {
        nearest_centroid(point, &self.centroids).0
    }

    /// Number of clusters in the fit.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Number of points assigned to each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Indices of the points assigned to cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.k()`.
    pub fn members_of(&self, c: usize) -> Vec<usize> {
        assert!(c < self.k(), "cluster index out of range");
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }
}

/// Returns `(index, distance)` of the centroid nearest to `point`.
///
/// # Panics
///
/// Panics if `centroids` has no rows.
pub(crate) fn nearest_centroid(point: &[f32], centroids: &Matrix) -> (usize, f32) {
    assert!(centroids.rows() > 0, "no centroids");
    let mut best = (0usize, f32::INFINITY);
    for c in 0..centroids.rows() {
        let d = l2_distance(point, centroids.row(c));
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// Threads to use for a per-point fan-out whose work is `points·k·dim`
/// distance terms. Delegates to the global [`parallel_config`] so tests can
/// pin `threads = 1`.
fn assignment_threads(points: usize, k: usize, dim: usize) -> usize {
    parallel_config().threads_for(points.saturating_mul(k).saturating_mul(dim.max(1)))
}

fn farthest_point(points: &Matrix, centroids: &Matrix, assignments: &[usize]) -> usize {
    let mut best = (0usize, -1.0f32);
    #[allow(clippy::needless_range_loop)]
    for i in 0..points.rows() {
        let d = l2_distance(points.row(i), centroids.row(assignments[i]));
        if d > best.1 {
            best = (i, d);
        }
    }
    best.0
}

/// Mean silhouette coefficient of a clustering, in `[-1, 1]`.
///
/// Larger is better; ~0 indicates overlapping clusters. Points in singleton
/// clusters contribute 0, following the usual convention.
///
/// # Panics
///
/// Panics if `assignments.len() != points.rows()`.
pub fn silhouette_score(points: &Matrix, assignments: &[usize], k: usize) -> f32 {
    assert_eq!(points.rows(), assignments.len(), "assignment count mismatch");
    let n = points.rows();
    if n == 0 || k < 2 {
        return 0.0;
    }
    // Each point's silhouette coefficient is independent (O(n·d) apiece), so
    // compute them in parallel and sum serially in point order.
    let mut coeffs = vec![0.0f32; n];
    let threads = parallel_config().threads_for(n.saturating_mul(n).saturating_mul(points.cols().max(1)));
    anole_tensor::parallel::for_each_row_chunk(&mut coeffs, 1, n, threads, |range, out| {
        for (slot, i) in out.iter_mut().zip(range) {
            let mut dist_sum = vec![0.0f32; k];
            let mut count = vec![0usize; k];
            for j in 0..n {
                if i == j {
                    continue;
                }
                dist_sum[assignments[j]] += l2_distance(points.row(i), points.row(j));
                count[assignments[j]] += 1;
            }
            let own = assignments[i];
            if count[own] == 0 {
                continue; // singleton cluster contributes 0
            }
            let a = dist_sum[own] / count[own] as f32;
            let mut b = f32::INFINITY;
            for c in 0..k {
                if c != own && count[c] > 0 {
                    b = b.min(dist_sum[c] / count[c] as f32);
                }
            }
            if b.is_finite() {
                *slot = (b - a) / a.max(b);
            }
        }
    });
    let total: f32 = coeffs.iter().sum();
    total / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f32, f32)], per: usize, spread: f32, seed: Seed) -> Matrix {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per {
                let jitter = Matrix::random_normal(1, 2, spread, &mut rng);
                rows.push(vec![cx + jitter.get(0, 0), cy + jitter.get(0, 1)]);
            }
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs).unwrap()
    }

    #[test]
    fn separates_clear_blobs() {
        let pts = blobs(&[(0.0, 0.0), (20.0, 20.0), (-20.0, 20.0)], 30, 0.5, Seed(1));
        let fit = KMeans::new(3).fit(&pts, Seed(2)).unwrap();
        // Every blob must map to a single cluster.
        for blob in 0..3 {
            let first = fit.assignments[blob * 30];
            for i in 0..30 {
                assert_eq!(fit.assignments[blob * 30 + i], first, "blob {blob}");
            }
        }
        // And the three blobs to three different clusters.
        let mut seen: Vec<usize> = (0..3).map(|b| fit.assignments[b * 30]).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = blobs(&[(0.0, 0.0), (8.0, 8.0), (16.0, 0.0), (0.0, 16.0)], 25, 1.0, Seed(3));
        let mut last = f32::INFINITY;
        for k in 1..=4 {
            let fit = KMeans::new(k).fit(&pts, Seed(4)).unwrap();
            assert!(fit.inertia <= last + 1e-3, "k={k}: {} > {last}", fit.inertia);
            last = fit.inertia;
        }
    }

    #[test]
    fn k_equal_n_gives_zero_inertia() {
        let pts = blobs(&[(0.0, 0.0), (5.0, 5.0)], 2, 0.3, Seed(5));
        let fit = KMeans::new(4).fit(&pts, Seed(6)).unwrap();
        assert!(fit.inertia < 1e-6);
    }

    #[test]
    fn rejects_bad_inputs() {
        let pts = Matrix::zeros(3, 2);
        assert_eq!(KMeans::new(0).fit(&pts, Seed(0)).unwrap_err(), ClusterError::ZeroClusters);
        assert_eq!(
            KMeans::new(5).fit(&pts, Seed(0)).unwrap_err(),
            ClusterError::TooFewPoints { points: 3, k: 5 }
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs(&[(0.0, 0.0), (10.0, 0.0)], 20, 1.0, Seed(7));
        let a = KMeans::new(2).fit(&pts, Seed(8)).unwrap();
        let b = KMeans::new(2).fit(&pts, Seed(8)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn assignments_are_nearest_centroids() {
        let pts = blobs(&[(0.0, 0.0), (10.0, 10.0)], 15, 2.0, Seed(9));
        let fit = KMeans::new(2).fit(&pts, Seed(10)).unwrap();
        for i in 0..pts.rows() {
            let (nearest, _) = nearest_centroid(pts.row(i), &fit.centroids);
            assert_eq!(fit.assignments[i], nearest);
        }
    }

    #[test]
    fn silhouette_high_for_separated_low_for_merged() {
        let pts = blobs(&[(0.0, 0.0), (30.0, 30.0)], 20, 0.5, Seed(11));
        let fit = KMeans::new(2).fit(&pts, Seed(12)).unwrap();
        let good = silhouette_score(&pts, &fit.assignments, 2);
        assert!(good > 0.8, "good {good}");

        let one_blob = blobs(&[(0.0, 0.0)], 40, 1.0, Seed(13));
        let fit2 = KMeans::new(2).fit(&one_blob, Seed(14)).unwrap();
        let bad = silhouette_score(&one_blob, &fit2.assignments, 2);
        assert!(bad < good);
    }

    #[test]
    fn silhouette_edge_cases() {
        assert_eq!(silhouette_score(&Matrix::zeros(0, 2), &[], 2), 0.0);
        let pts = Matrix::zeros(3, 2);
        assert_eq!(silhouette_score(&pts, &[0, 0, 0], 1), 0.0);
    }
}
