//! The multi-level clustering sweep of Algorithm 1.
//!
//! Algorithm 1 clusters scene embeddings with k = 2, then 3, and so on,
//! harvesting any cluster whose trained model validates above δ, until the
//! model repository holds n models. [`MultiLevelClustering`] is the iterator
//! that produces each level's clustering; the harvesting policy lives in
//! `anole-core`, which owns model training.

use anole_tensor::{Matrix, Seed};
use serde::{Deserialize, Serialize};

use crate::{ClusterError, KMeans, KMeansFit};

/// One level of the multi-granularity sweep: a full k-means fit at a given k.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterLevel {
    /// The number of clusters at this level.
    pub k: usize,
    /// The clustering of the embedded points at this level.
    pub fit: KMeansFit,
}

/// Iterator over k-means fits with increasing k (k = `start_k`, `start_k`+1, …).
///
/// Each level reuses the same embedding matrix and derives its RNG stream
/// from the base seed and k, so any level is reproducible in isolation.
///
/// # Examples
///
/// ```
/// use anole_cluster::MultiLevelClustering;
/// use anole_tensor::{Matrix, Seed};
///
/// let emb = Matrix::from_rows(&[&[0.0], &[0.1], &[5.0], &[5.1], &[9.0]])?;
/// let mut sweep = MultiLevelClustering::new(&emb, Seed(3));
/// let level2 = sweep.next().unwrap()?;
/// assert_eq!(level2.k, 2);
/// let level3 = sweep.next().unwrap()?;
/// assert_eq!(level3.k, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiLevelClustering<'a> {
    embeddings: &'a Matrix,
    seed: Seed,
    next_k: usize,
    max_k: usize,
}

impl<'a> MultiLevelClustering<'a> {
    /// Starts a sweep at k = 2 over `embeddings` (one row per point).
    ///
    /// The sweep ends when k would exceed the number of points.
    pub fn new(embeddings: &'a Matrix, seed: Seed) -> Self {
        Self {
            embeddings,
            seed,
            next_k: 2,
            max_k: embeddings.rows(),
        }
    }

    /// Overrides the first k of the sweep (default 2, per Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn starting_at(mut self, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        self.next_k = k;
        self
    }

    /// Caps the sweep at `k <= max_k`.
    pub fn with_max_k(mut self, max_k: usize) -> Self {
        self.max_k = max_k.min(self.embeddings.rows());
        self
    }

    /// The k the next call to `next` will use.
    pub fn next_k(&self) -> usize {
        self.next_k
    }
}

impl Iterator for MultiLevelClustering<'_> {
    type Item = Result<ClusterLevel, ClusterError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_k > self.max_k {
            return None;
        }
        let k = self.next_k;
        self.next_k += 1;
        let seed = anole_tensor::split_seed(self.seed, k as u64);
        Some(
            KMeans::new(k)
                .fit(self.embeddings, seed)
                .map(|fit| ClusterLevel { k, fit }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points(n: usize) -> Matrix {
        let rows: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32 * 3.0]).collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs).unwrap()
    }

    #[test]
    fn sweep_visits_increasing_k() {
        let emb = line_points(6);
        let ks: Vec<usize> = MultiLevelClustering::new(&emb, Seed(1))
            .map(|l| l.unwrap().k)
            .collect();
        assert_eq!(ks, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn sweep_respects_max_k() {
        let emb = line_points(10);
        let ks: Vec<usize> = MultiLevelClustering::new(&emb, Seed(1))
            .with_max_k(4)
            .map(|l| l.unwrap().k)
            .collect();
        assert_eq!(ks, vec![2, 3, 4]);
    }

    #[test]
    fn sweep_can_start_later() {
        let emb = line_points(8);
        let mut sweep = MultiLevelClustering::new(&emb, Seed(1)).starting_at(5);
        assert_eq!(sweep.next_k(), 5);
        assert_eq!(sweep.next().unwrap().unwrap().k, 5);
    }

    #[test]
    fn each_level_is_a_valid_partition() {
        let emb = line_points(9);
        for level in MultiLevelClustering::new(&emb, Seed(2)).with_max_k(5) {
            let level = level.unwrap();
            assert_eq!(level.fit.assignments.len(), 9);
            assert!(level.fit.assignments.iter().all(|&a| a < level.k));
            // Every cluster non-empty after repair.
            let sizes = level.fit.cluster_sizes();
            assert!(sizes.iter().all(|&s| s > 0), "sizes {sizes:?} at k={}", level.k);
        }
    }

    #[test]
    fn levels_are_reproducible_independently() {
        let emb = line_points(7);
        let all: Vec<ClusterLevel> = MultiLevelClustering::new(&emb, Seed(5))
            .map(|l| l.unwrap())
            .collect();
        // Jump straight to k = 4 with the same base seed.
        let level4 = MultiLevelClustering::new(&emb, Seed(5))
            .starting_at(4)
            .next()
            .unwrap()
            .unwrap();
        assert_eq!(level4, all[2]);
    }

    #[test]
    fn empty_embedding_yields_no_levels() {
        let emb = Matrix::zeros(0, 3);
        assert!(MultiLevelClustering::new(&emb, Seed(0)).next().is_none());
        let one = Matrix::zeros(1, 3);
        assert!(MultiLevelClustering::new(&one, Seed(0)).next().is_none());
    }
}
