//! Inference and model-load latency (paper Table IV, Fig. 4a).

use anole_nn::ReferenceModel;
use rand::Rng;
use serde::Serialize;

use crate::{DeviceKind, DeviceSpec};

/// Mean per-frame inference latency in milliseconds per Table IV.
///
/// The `M_scene + M_decision` pipeline stage is represented by
/// [`ReferenceModel::Resnet18`] (the backbone dominates; the MLP head adds
/// microseconds) — use [`LatencyModel::scene_decision_ms`] for the combined
/// row.
fn table_iv_ms(kind: DeviceKind, model: ReferenceModel) -> f32 {
    use DeviceKind::*;
    use ReferenceModel::*;
    match (kind, model) {
        (JetsonNano, Yolov3) => 313.8,
        (JetsonNano, Yolov3Tiny) => 37.8,
        (JetsonNano, Resnet18) => 22.9,
        (JetsonNano, DecisionMlp) => 0.3,
        (JetsonTx2Nx, Yolov3) => 42.9,
        (JetsonTx2Nx, Yolov3Tiny) => 10.8,
        (JetsonTx2Nx, Resnet18) => 3.0,
        (JetsonTx2Nx, DecisionMlp) => 0.1,
        (Laptop, Yolov3) => 62.2,
        (Laptop, Yolov3Tiny) => 32.2,
        (Laptop, Resnet18) => 20.5,
        (Laptop, DecisionMlp) => 0.3,
    }
}

/// Latency simulator for one device.
///
/// Mean per-model latencies reproduce Table IV; each call adds log-normal-ish
/// jitter (a truncated Gaussian multiplicative factor) so experiment traces
/// have realistic variance. Model loading (the Fig. 4a first-frame spike) is
/// priced as framework initialization plus weight I/O.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LatencyModel {
    spec: DeviceSpec,
    jitter_fraction: f32,
    /// Throughput multiplier (power-mode scaling); 1.0 = full speed.
    throughput_scale: f32,
}

impl LatencyModel {
    /// Latency model of a device at full power.
    pub fn for_device(kind: DeviceKind) -> Self {
        Self {
            spec: DeviceSpec::of(kind),
            jitter_fraction: 0.05,
            throughput_scale: 1.0,
        }
    }

    /// The underlying device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Sets the multiplicative latency jitter (default 5%).
    pub fn with_jitter(mut self, fraction: f32) -> Self {
        self.jitter_fraction = fraction.max(0.0);
        self
    }

    /// Scales compute throughput (for power modes); `0.5` doubles compute
    /// latency. I/O and framework costs are unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn with_throughput_scale(mut self, scale: f32) -> Self {
        assert!(scale > 0.0, "throughput scale must be positive");
        self.throughput_scale = scale;
        self
    }

    /// Mean (jitter-free) inference latency of a model class at the current
    /// throughput scale.
    pub fn mean_inference_ms(&self, model: ReferenceModel) -> f32 {
        table_iv_ms(self.spec.kind, model) / self.throughput_scale
    }

    /// One sampled per-frame inference latency.
    pub fn inference_ms<R: Rng + ?Sized>(&self, model: ReferenceModel, rng: &mut R) -> f32 {
        self.mean_inference_ms(model) * self.jitter_factor(rng)
    }

    /// Mean latency of the `M_scene + M_decision` stage (Table IV row 1).
    pub fn mean_scene_decision_ms(&self) -> f32 {
        self.mean_inference_ms(ReferenceModel::Resnet18)
            + self.mean_inference_ms(ReferenceModel::DecisionMlp)
    }

    /// One sampled `M_scene + M_decision` latency.
    pub fn scene_decision_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        self.mean_scene_decision_ms() * self.jitter_factor(rng)
    }

    /// Model-load latency: weight I/O at the device's bandwidth. Add
    /// [`LatencyModel::framework_init_ms`] when the process has never loaded
    /// any model before (the Fig. 4a first-frame spike includes both).
    pub fn load_ms(&self, model: ReferenceModel) -> f32 {
        model.weight_bytes() as f32 / self.spec.load_bandwidth_bytes_per_ms
    }

    /// One-time framework initialization cost (PyTorch/TensorRT warm-up).
    pub fn framework_init_ms(&self) -> f32 {
        self.spec.framework_init_ms
    }

    /// Idle headroom left in a frame whose deadline is `budget_ms` after
    /// `elapsed_ms` of foreground work — floored at zero once the budget is
    /// blown.
    pub fn idle_headroom_ms(&self, budget_ms: f32, elapsed_ms: f32) -> f32 {
        (budget_ms - elapsed_ms).max(0.0)
    }

    /// Whether a background load of `model` fits strictly inside the idle
    /// headroom of the current frame. Predictive prefetchers use this to
    /// guarantee a speculative load can never push the frame past its
    /// deadline.
    pub fn background_load_fits(
        &self,
        model: ReferenceModel,
        budget_ms: f32,
        elapsed_ms: f32,
    ) -> bool {
        self.load_ms(model) < self.idle_headroom_ms(budget_ms, elapsed_ms)
    }

    /// Cost of the `attempt`-th (0-based) load attempt under
    /// retry-with-backoff: the weight I/O plus an exponentially growing
    /// back-off pause before each retry, so a load that fails `n` times
    /// costs `load_ms · (2ⁿ⁺¹ − 1)` in total. Retries are priced through
    /// the latency model — they cost simulated milliseconds, never
    /// wall-clock sleeps.
    pub fn load_retry_ms(&self, model: ReferenceModel, attempt: u32) -> f32 {
        self.load_ms(model) * 2f32.powi(attempt.min(16) as i32)
    }

    /// First-twenty-frames latency trace of Fig. 4a: frame 0 pays framework
    /// init + model load + inference; subsequent frames pay inference only.
    pub fn cold_start_trace<R: Rng + ?Sized>(
        &self,
        model: ReferenceModel,
        frames: usize,
        rng: &mut R,
    ) -> Vec<f32> {
        (0..frames)
            .map(|i| {
                let mut ms = self.inference_ms(model, rng);
                if i == 0 {
                    ms += self.framework_init_ms() + self.load_ms(model);
                }
                ms
            })
            .collect()
    }

    fn jitter_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        if self.jitter_fraction == 0.0 {
            return 1.0;
        }
        // Truncated Gaussian multiplicative jitter.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        (1.0 + z.clamp(-3.0, 3.0) * self.jitter_fraction).max(0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anole_tensor::{rng_from_seed, Seed};

    #[test]
    fn table_iv_means_are_reproduced() {
        let nano = LatencyModel::for_device(DeviceKind::JetsonNano);
        assert_eq!(nano.mean_inference_ms(ReferenceModel::Yolov3), 313.8);
        assert_eq!(nano.mean_inference_ms(ReferenceModel::Yolov3Tiny), 37.8);
        let tx2 = LatencyModel::for_device(DeviceKind::JetsonTx2Nx);
        assert!((tx2.mean_scene_decision_ms() - 3.1).abs() < 0.01);
        let laptop = LatencyModel::for_device(DeviceKind::Laptop);
        assert_eq!(laptop.mean_inference_ms(ReferenceModel::Yolov3Tiny), 32.2);
    }

    #[test]
    fn tiny_is_much_faster_than_deep_everywhere() {
        for kind in DeviceKind::ALL {
            let m = LatencyModel::for_device(kind);
            let tiny = m.mean_inference_ms(ReferenceModel::Yolov3Tiny);
            let deep = m.mean_inference_ms(ReferenceModel::Yolov3);
            assert!(deep > 1.9 * tiny, "{kind}: {deep} vs {tiny}");
        }
        // Paper: 87.9% lower on Nano.
        let nano = LatencyModel::for_device(DeviceKind::JetsonNano);
        let reduction = 1.0
            - nano.mean_inference_ms(ReferenceModel::Yolov3Tiny)
                / nano.mean_inference_ms(ReferenceModel::Yolov3);
        assert!((reduction - 0.879).abs() < 0.01, "reduction {reduction}");
    }

    #[test]
    fn jitter_is_centered_and_bounded() {
        let m = LatencyModel::for_device(DeviceKind::JetsonTx2Nx);
        let mut rng = rng_from_seed(Seed(1));
        let n = 2000;
        let samples: Vec<f32> = (0..n)
            .map(|_| m.inference_ms(ReferenceModel::Yolov3Tiny, &mut rng))
            .collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        assert!((mean - 10.8).abs() < 0.3, "mean {mean}");
        assert!(samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let m = LatencyModel::for_device(DeviceKind::Laptop).with_jitter(0.0);
        let mut rng = rng_from_seed(Seed(2));
        assert_eq!(m.inference_ms(ReferenceModel::Yolov3, &mut rng), 62.2);
    }

    #[test]
    fn cold_start_spike_dominates_first_frame() {
        let m = LatencyModel::for_device(DeviceKind::JetsonTx2Nx).with_jitter(0.0);
        let mut rng = rng_from_seed(Seed(3));
        let trace = m.cold_start_trace(ReferenceModel::Yolov3, 20, &mut rng);
        assert_eq!(trace.len(), 20);
        // First frame includes ~1.5 s init + ~2 s weight I/O.
        assert!(trace[0] > 30.0 * trace[1], "spike {} vs steady {}", trace[0], trace[1]);
        for w in trace[1..].windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn load_time_scales_with_weights() {
        let m = LatencyModel::for_device(DeviceKind::JetsonNano);
        let deep = m.load_ms(ReferenceModel::Yolov3);
        let tiny = m.load_ms(ReferenceModel::Yolov3Tiny);
        assert!((deep / tiny - 237.0 / 34.0).abs() < 0.05);
    }

    #[test]
    fn retry_backoff_doubles_per_attempt() {
        let m = LatencyModel::for_device(DeviceKind::JetsonNano);
        let base = m.load_ms(ReferenceModel::Yolov3Tiny);
        assert_eq!(m.load_retry_ms(ReferenceModel::Yolov3Tiny, 0), base);
        assert_eq!(m.load_retry_ms(ReferenceModel::Yolov3Tiny, 1), 2.0 * base);
        assert_eq!(m.load_retry_ms(ReferenceModel::Yolov3Tiny, 3), 8.0 * base);
        // The exponent is clamped so absurd attempt counts stay finite.
        assert!(m.load_retry_ms(ReferenceModel::Yolov3Tiny, 40).is_finite());
    }

    #[test]
    fn throughput_scale_slows_compute() {
        let full = LatencyModel::for_device(DeviceKind::JetsonTx2Nx);
        let half = LatencyModel::for_device(DeviceKind::JetsonTx2Nx).with_throughput_scale(0.5);
        assert_eq!(
            half.mean_inference_ms(ReferenceModel::Yolov3Tiny),
            2.0 * full.mean_inference_ms(ReferenceModel::Yolov3Tiny)
        );
        assert_eq!(half.load_ms(ReferenceModel::Yolov3Tiny), full.load_ms(ReferenceModel::Yolov3Tiny));
    }

    #[test]
    #[should_panic(expected = "throughput scale must be positive")]
    fn rejects_zero_throughput() {
        let _ = LatencyModel::for_device(DeviceKind::Laptop).with_throughput_scale(0.0);
    }

    #[test]
    fn headroom_floors_at_zero_and_gates_background_loads() {
        let m = LatencyModel::for_device(DeviceKind::JetsonTx2Nx);
        assert_eq!(m.idle_headroom_ms(33.0, 10.0), 23.0);
        assert_eq!(m.idle_headroom_ms(33.0, 50.0), 0.0);
        let load = m.load_ms(ReferenceModel::Yolov3Tiny);
        // A frame with more slack than the load time admits the prefetch …
        assert!(m.background_load_fits(ReferenceModel::Yolov3Tiny, load + 1.0, 0.0));
        // … an exhausted or exactly-full frame does not.
        assert!(!m.background_load_fits(ReferenceModel::Yolov3Tiny, load, 0.0));
        assert!(!m.background_load_fits(ReferenceModel::Yolov3Tiny, 33.0, 33.0));
    }
}
