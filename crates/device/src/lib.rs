//! Mobile-device simulator for the Anole reproduction.
//!
//! The paper deploys on three physical devices (Jetson Nano, Jetson TX2 NX,
//! a laptop — Table I) and reports per-model inference latency and memory
//! (Table IV), cold-start model-loading delays (Fig. 4a), and power/FPS
//! across TX2 power modes (Fig. 11). This crate reproduces those cost models
//! in simulation:
//!
//! * [`DeviceSpec`] — hardware constants per device, calibrated so that the
//!   mean simulated latencies reproduce Table IV exactly;
//! * [`LatencyModel`] — per-frame inference latency with jitter, plus
//!   model-load latency (I/O + framework initialization) for cold starts;
//! * [`PowerMode`] / [`PowerModel`] — the TX2-style power modes of Fig. 11;
//! * [`GpuMemoryModel`] — how many compressed models fit in GPU memory,
//!   which bounds the model-cache capacity;
//! * [`UnstableLink`] — a Gilbert–Elliott uplink for the cloud-offload
//!   ablation motivating local inference (§I).
//!
//! # Examples
//!
//! ```
//! use anole_device::{DeviceKind, LatencyModel};
//! use anole_nn::ReferenceModel;
//! use anole_tensor::{rng_from_seed, Seed};
//!
//! let model = LatencyModel::for_device(DeviceKind::JetsonTx2Nx);
//! let mut rng = rng_from_seed(Seed(1));
//! let ms = model.inference_ms(ReferenceModel::Yolov3Tiny, &mut rng);
//! assert!(ms > 5.0 && ms < 20.0); // Table IV: 10.8 ms mean
//! ```

mod latency;
mod link;
mod memory;
mod power;
mod spec;

pub use latency::LatencyModel;
pub use link::{LinkState, UnstableLink, UnstableLinkConfig};
pub use memory::GpuMemoryModel;
pub use power::{PowerModel, PowerMode, PowerReading};
pub use spec::{DeviceKind, DeviceSpec};
