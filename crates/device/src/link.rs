//! Unstable wireless uplink (Gilbert–Elliott), used by the cloud-offload
//! ablation that motivates local inference (paper §I: "unstable
//! communication … may lead to unpredictable delay").

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Channel state of the two-state Gilbert–Elliott model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkState {
    /// Connected with nominal bandwidth and RTT.
    Good,
    /// Degraded or disconnected: transfers time out.
    Bad,
}

/// Parameters of the unstable uplink.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnstableLinkConfig {
    /// Per-step probability of leaving the good state.
    pub p_good_to_bad: f32,
    /// Per-step probability of recovering from the bad state.
    pub p_bad_to_good: f32,
    /// Mean round-trip time in the good state, milliseconds.
    pub good_rtt_ms: f32,
    /// RTT jitter fraction in the good state.
    pub rtt_jitter: f32,
    /// Uplink bandwidth in bytes per millisecond in the good state.
    pub bandwidth_bytes_per_ms: f32,
    /// Timeout after which a transfer in the bad state is abandoned.
    pub timeout_ms: f32,
}

impl Default for UnstableLinkConfig {
    /// A vehicular LTE-like link: ~60 ms RTT, ~1 MB/s up, occasional
    /// multi-second outages.
    fn default() -> Self {
        Self {
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.10,
            good_rtt_ms: 60.0,
            rtt_jitter: 0.3,
            bandwidth_bytes_per_ms: 1_000.0,
            timeout_ms: 1_000.0,
        }
    }
}

/// The unstable uplink simulator. Each [`UnstableLink::round_trip_ms`] call
/// advances the channel one step and prices one offloaded inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnstableLink {
    config: UnstableLinkConfig,
    state: LinkState,
}

impl UnstableLink {
    /// Creates a link starting in the good state.
    pub fn new(config: UnstableLinkConfig) -> Self {
        Self {
            config,
            state: LinkState::Good,
        }
    }

    /// Current channel state.
    pub fn state(&self) -> LinkState {
        self.state
    }

    /// The configuration.
    pub fn config(&self) -> &UnstableLinkConfig {
        &self.config
    }

    /// Attempts one offloaded round trip carrying `payload_bytes` up.
    ///
    /// Returns `Ok(ms)` on success or `Err(timeout_ms)` when the channel was
    /// bad and the request timed out (the caller must retry or fall back to
    /// local inference, paying the timeout either way).
    pub fn round_trip_ms<R: Rng + ?Sized>(
        &mut self,
        payload_bytes: u64,
        rng: &mut R,
    ) -> Result<f32, f32> {
        self.step(rng);
        match self.state {
            LinkState::Good => {
                let transfer = payload_bytes as f32 / self.config.bandwidth_bytes_per_ms;
                let jitter = 1.0 + (rng.gen::<f32>() - 0.5) * 2.0 * self.config.rtt_jitter;
                Ok(self.config.good_rtt_ms * jitter.max(0.1) + transfer)
            }
            LinkState::Bad => Err(self.config.timeout_ms),
        }
    }

    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let flip: f32 = rng.gen();
        self.state = match self.state {
            LinkState::Good if flip < self.config.p_good_to_bad => LinkState::Bad,
            LinkState::Bad if flip < self.config.p_bad_to_good => LinkState::Good,
            s => s,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anole_tensor::{rng_from_seed, Seed};

    #[test]
    fn good_state_prices_rtt_plus_transfer() {
        let mut link = UnstableLink::new(UnstableLinkConfig {
            p_good_to_bad: 0.0,
            rtt_jitter: 0.0,
            ..UnstableLinkConfig::default()
        });
        let mut rng = rng_from_seed(Seed(1));
        let ms = link.round_trip_ms(200_000, &mut rng).unwrap();
        assert!((ms - (60.0 + 200.0)).abs() < 1e-3, "{ms}");
    }

    #[test]
    fn outages_produce_timeouts() {
        let mut link = UnstableLink::new(UnstableLinkConfig {
            p_good_to_bad: 1.0,
            p_bad_to_good: 0.0,
            ..UnstableLinkConfig::default()
        });
        let mut rng = rng_from_seed(Seed(2));
        assert_eq!(link.round_trip_ms(1000, &mut rng), Err(1000.0));
        assert_eq!(link.state(), LinkState::Bad);
    }

    #[test]
    fn tail_latency_is_much_worse_than_median() {
        let mut link = UnstableLink::new(UnstableLinkConfig::default());
        let mut rng = rng_from_seed(Seed(3));
        let mut latencies: Vec<f32> = (0..2000)
            .map(|_| match link.round_trip_ms(200_000, &mut rng) {
                Ok(ms) => ms,
                Err(timeout) => timeout,
            })
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = latencies[latencies.len() / 2];
        let p99 = latencies[latencies.len() * 99 / 100];
        assert!(p99 > 3.0 * median, "median {median}, p99 {p99}");
    }

    #[test]
    fn channel_recovers_eventually() {
        let mut link = UnstableLink::new(UnstableLinkConfig {
            p_good_to_bad: 1.0,
            p_bad_to_good: 0.5,
            ..UnstableLinkConfig::default()
        });
        let mut rng = rng_from_seed(Seed(4));
        let _ = link.round_trip_ms(1, &mut rng); // forced into Bad
        let mut recovered = false;
        for _ in 0..100 {
            if link.round_trip_ms(1, &mut rng).is_ok() {
                recovered = true;
                break;
            }
        }
        assert!(recovered);
    }

    #[test]
    fn outage_fraction_matches_stationary_distribution() {
        let cfg = UnstableLinkConfig::default();
        let mut link = UnstableLink::new(cfg);
        let mut rng = rng_from_seed(Seed(5));
        let n = 20_000;
        let bad = (0..n)
            .filter(|_| link.round_trip_ms(1, &mut rng).is_err())
            .count();
        let expected = cfg.p_good_to_bad / (cfg.p_good_to_bad + cfg.p_bad_to_good);
        let measured = bad as f32 / n as f32;
        assert!(
            (measured - expected).abs() < 0.03,
            "measured {measured}, expected {expected}"
        );
    }
}
