//! Power modes and the power/FPS model (paper Fig. 11).

use anole_nn::ReferenceModel;
use serde::{Deserialize, Serialize};

use crate::{DeviceKind, DeviceSpec, LatencyModel};

/// A Jetson-style power mode: a wattage budget, active core count, and the
/// compute-throughput fraction it allows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerMode {
    /// Input power budget in watts.
    pub watts: f32,
    /// Active CPU cores.
    pub cores: u8,
    /// GPU throughput relative to the top mode.
    pub throughput_scale: f32,
}

impl PowerMode {
    /// The TX2 NX-style modes swept in Fig. 11 (7.5 W / 10 W / 15 W / 20 W).
    pub fn tx2_modes() -> Vec<PowerMode> {
        vec![
            PowerMode { watts: 7.5, cores: 2, throughput_scale: 0.40 },
            PowerMode { watts: 10.0, cores: 4, throughput_scale: 0.60 },
            PowerMode { watts: 15.0, cores: 4, throughput_scale: 0.85 },
            PowerMode { watts: 20.0, cores: 6, throughput_scale: 1.00 },
        ]
    }

    /// Human-readable label, e.g. `"20W/6core"`.
    pub fn label(&self) -> String {
        format!("{}W/{}core", self.watts, self.cores)
    }
}

/// A power and throughput reading for one inference pipeline on one mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReading {
    /// Achieved frames per second (camera-capped).
    pub fps: f32,
    /// Average power draw in watts.
    pub watts: f32,
    /// Energy per frame in joules.
    pub joules_per_frame: f32,
}

/// Power model: energy per frame is proportional to the reference FLOPs of
/// every model the pipeline runs per frame; power is idle draw plus dynamic
/// energy times achieved FPS, clamped to the mode's budget.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PowerModel {
    spec: DeviceSpec,
    /// Source camera frame rate (paper footage is 30 fps).
    pub camera_fps: f32,
}

impl PowerModel {
    /// Power model of a device with a 30 fps camera.
    pub fn for_device(kind: DeviceKind) -> Self {
        Self {
            spec: DeviceSpec::of(kind),
            camera_fps: 30.0,
        }
    }

    /// Evaluates a pipeline on a mode.
    ///
    /// `pipeline` lists every model executed per frame (e.g. Anole runs
    /// `[Resnet18, DecisionMlp, Yolov3Tiny]`, SDM runs `[Yolov3]`). FPS is
    /// the camera rate unless compute-bound; power is idle + dynamic, capped
    /// at the mode's wattage budget.
    pub fn evaluate(&self, pipeline: &[ReferenceModel], mode: PowerMode) -> PowerReading {
        let latency = LatencyModel::for_device(self.spec.kind)
            .with_jitter(0.0)
            .with_throughput_scale(mode.throughput_scale);
        let frame_ms: f32 = pipeline.iter().map(|&m| latency.mean_inference_ms(m)).sum();
        let fps = (1000.0 / frame_ms).min(self.camera_fps);
        let gflops_per_frame: f32 =
            pipeline.iter().map(|&m| m.flops() as f32 / 1e9).sum();
        let joules_per_frame =
            gflops_per_frame * self.spec.joules_per_gflop + self.spec.overhead_joules_per_frame;
        let idle = self.idle_at(mode);
        let watts = (idle + joules_per_frame * fps).min(mode.watts);
        PowerReading {
            fps,
            watts,
            joules_per_frame,
        }
    }

    fn idle_at(&self, mode: PowerMode) -> f32 {
        // More cores online → higher idle floor.
        self.spec.idle_watts * (0.7 + 0.05 * mode.cores as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANOLE: [ReferenceModel; 3] = [
        ReferenceModel::Resnet18,
        ReferenceModel::DecisionMlp,
        ReferenceModel::Yolov3Tiny,
    ];
    const SDM: [ReferenceModel; 1] = [ReferenceModel::Yolov3];

    #[test]
    fn tx2_modes_are_monotone() {
        let modes = PowerMode::tx2_modes();
        assert_eq!(modes.len(), 4);
        for w in modes.windows(2) {
            assert!(w[1].watts > w[0].watts);
            assert!(w[1].throughput_scale > w[0].throughput_scale);
        }
        assert_eq!(modes[3].label(), "20W/6core");
    }

    #[test]
    fn anole_uses_much_less_power_than_sdm() {
        // Paper: 45.1% reduction vs SDM at full power.
        let pm = PowerModel::for_device(DeviceKind::JetsonTx2Nx);
        let top = PowerMode::tx2_modes()[3];
        let anole = pm.evaluate(&ANOLE, top);
        let sdm = pm.evaluate(&SDM, top);
        let reduction = 1.0 - anole.watts / sdm.watts;
        assert!(
            (0.30..0.60).contains(&reduction),
            "reduction {reduction:.3} (anole {:.1} W, sdm {:.1} W)",
            anole.watts,
            sdm.watts
        );
    }

    #[test]
    fn anole_sustains_30fps_at_top_mode() {
        // Paper: >30 FPS at 20 W / 6 cores.
        let pm = PowerModel::for_device(DeviceKind::JetsonTx2Nx);
        let reading = pm.evaluate(&ANOLE, PowerMode::tx2_modes()[3]);
        assert!((reading.fps - 30.0).abs() < 1e-3, "fps {}", reading.fps);
    }

    #[test]
    fn sdm_is_compute_bound_on_low_modes() {
        let pm = PowerModel::for_device(DeviceKind::JetsonTx2Nx);
        let low = PowerMode::tx2_modes()[0];
        let reading = pm.evaluate(&SDM, low);
        assert!(reading.fps < 15.0, "fps {}", reading.fps);
    }

    #[test]
    fn fps_rises_with_power_mode() {
        let pm = PowerModel::for_device(DeviceKind::JetsonTx2Nx);
        let mut last = 0.0;
        for mode in PowerMode::tx2_modes() {
            let r = pm.evaluate(&SDM, mode);
            assert!(r.fps >= last, "fps must not drop with more power");
            last = r.fps;
        }
    }

    #[test]
    fn power_never_exceeds_mode_budget() {
        let pm = PowerModel::for_device(DeviceKind::JetsonTx2Nx);
        for mode in PowerMode::tx2_modes() {
            for pipeline in [&ANOLE[..], &SDM[..]] {
                let r = pm.evaluate(pipeline, mode);
                assert!(r.watts <= mode.watts + 1e-6);
                assert!(r.watts > 0.0);
            }
        }
    }

    #[test]
    fn energy_per_frame_tracks_flops() {
        let pm = PowerModel::for_device(DeviceKind::JetsonTx2Nx);
        let top = PowerMode::tx2_modes()[3];
        let anole = pm.evaluate(&ANOLE, top);
        let sdm = pm.evaluate(&SDM, top);
        let overhead = PowerModel::for_device(DeviceKind::JetsonTx2Nx)
            .spec
            .overhead_joules_per_frame;
        let flop_ratio = 65.86 / (4.69 + 0.0036 + 5.56);
        let energy_ratio =
            (sdm.joules_per_frame - overhead) / (anole.joules_per_frame - overhead);
        assert!((energy_ratio - flop_ratio as f32).abs() < 0.1);
    }
}
