//! Device hardware specifications (paper Table I).

use serde::{Deserialize, Serialize};

/// The three devices the paper deploys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Nvidia Jetson Nano: ARM A57, Maxwell GPU, 2 GB GPU memory.
    JetsonNano,
    /// Nvidia Jetson TX2 NX: ARM A57, Pascal GPU, 4 GB GPU memory.
    JetsonTx2Nx,
    /// Windows laptop: i7-10750H, RTX 2070, 8 GB GPU memory.
    Laptop,
}

impl DeviceKind {
    /// All devices in Table I order.
    pub const ALL: [DeviceKind; 3] =
        [DeviceKind::JetsonNano, DeviceKind::JetsonTx2Nx, DeviceKind::Laptop];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceKind::JetsonNano => "Jetson Nano",
            DeviceKind::JetsonTx2Nx => "Jetson TX2 NX",
            DeviceKind::Laptop => "Laptop",
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Hardware constants of a device (Table I plus the calibration constants
/// behind Table IV and Fig. 4a).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceSpec {
    /// Which device this is.
    pub kind: DeviceKind,
    /// CPU model string.
    pub cpu: &'static str,
    /// GPU model string.
    pub gpu: &'static str,
    /// GPU memory in bytes.
    pub gpu_memory_bytes: u64,
    /// Flash/disk capacity in bytes.
    pub storage_bytes: u64,
    /// One-time deep-learning-framework initialization cost when a model is
    /// first loaded (part of the Fig. 4a cold-start spike).
    pub framework_init_ms: f32,
    /// Storage→GPU load bandwidth in bytes per millisecond.
    pub load_bandwidth_bytes_per_ms: f32,
    /// Idle power draw in watts (at the default power mode).
    pub idle_watts: f32,
    /// Dynamic energy per reference GFLOP in joules.
    pub joules_per_gflop: f32,
    /// Fixed per-frame energy overhead in joules (capture, preprocessing,
    /// memory traffic) independent of which model runs.
    pub overhead_joules_per_frame: f32,
}

impl DeviceSpec {
    /// The built-in specification of a device.
    pub fn of(kind: DeviceKind) -> Self {
        const GB: u64 = 1_000_000_000;
        match kind {
            DeviceKind::JetsonNano => Self {
                kind,
                cpu: "ARM A57",
                gpu: "Maxwell",
                gpu_memory_bytes: 2 * GB,
                storage_bytes: 32 * GB,
                framework_init_ms: 1800.0,
                load_bandwidth_bytes_per_ms: 80_000.0, // 80 MB/s eMMC
                idle_watts: 1.8,
                joules_per_gflop: 0.012,
                overhead_joules_per_frame: 0.05,
            },
            DeviceKind::JetsonTx2Nx => Self {
                kind,
                cpu: "ARM A57",
                gpu: "Pascal",
                gpu_memory_bytes: 4 * GB,
                storage_bytes: 32 * GB,
                framework_init_ms: 1500.0,
                load_bandwidth_bytes_per_ms: 120_000.0,
                idle_watts: 6.0,
                joules_per_gflop: 0.010,
                overhead_joules_per_frame: 0.08,
            },
            DeviceKind::Laptop => Self {
                kind,
                cpu: "i7-10750H",
                gpu: "RTX 2070",
                gpu_memory_bytes: 8 * GB,
                storage_bytes: 1000 * GB,
                framework_init_ms: 900.0,
                load_bandwidth_bytes_per_ms: 900_000.0, // NVMe
                idle_watts: 18.0,
                joules_per_gflop: 0.015,
                overhead_joules_per_frame: 0.30,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_i() {
        let nano = DeviceSpec::of(DeviceKind::JetsonNano);
        assert_eq!(nano.gpu, "Maxwell");
        assert_eq!(nano.gpu_memory_bytes, 2_000_000_000);

        let tx2 = DeviceSpec::of(DeviceKind::JetsonTx2Nx);
        assert_eq!(tx2.gpu, "Pascal");
        assert_eq!(tx2.gpu_memory_bytes, 4_000_000_000);

        let laptop = DeviceSpec::of(DeviceKind::Laptop);
        assert_eq!(laptop.cpu, "i7-10750H");
        assert_eq!(laptop.gpu_memory_bytes, 8_000_000_000);
        assert_eq!(laptop.storage_bytes, 1_000_000_000_000);
    }

    #[test]
    fn all_devices_have_positive_constants() {
        for kind in DeviceKind::ALL {
            let s = DeviceSpec::of(kind);
            assert!(s.framework_init_ms > 0.0);
            assert!(s.load_bandwidth_bytes_per_ms > 0.0);
            assert!(s.idle_watts > 0.0);
            assert!(s.joules_per_gflop > 0.0);
            assert!(s.overhead_joules_per_frame > 0.0);
            assert!(!s.kind.name().is_empty());
        }
    }

    #[test]
    fn laptop_loads_models_fastest() {
        let bw = |k| DeviceSpec::of(k).load_bandwidth_bytes_per_ms;
        assert!(bw(DeviceKind::Laptop) > bw(DeviceKind::JetsonTx2Nx));
        assert!(bw(DeviceKind::JetsonTx2Nx) > bw(DeviceKind::JetsonNano));
    }
}
