//! GPU memory accounting (paper Table IV, §V-B).
//!
//! Loading a model costs its weight footprint; *executing* one costs more
//! (activations, workspace). The model cache keeps several compressed models
//! loaded but only one executes at a time, so the budget is:
//! `gpu_memory ≥ execution_peak + scene_decision_resident + n · load_bytes`.

use anole_nn::ReferenceModel;
use serde::Serialize;

use crate::{DeviceKind, DeviceSpec};

/// GPU memory model for sizing the on-device model cache.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GpuMemoryModel {
    spec: DeviceSpec,
    /// Fraction of GPU memory usable by the application (the OS/display
    /// stack reserves the rest, significant on the 2 GB Nano).
    pub usable_fraction: f32,
}

impl GpuMemoryModel {
    /// Memory model of a device with a default 85% usable fraction.
    pub fn for_device(kind: DeviceKind) -> Self {
        Self {
            spec: DeviceSpec::of(kind),
            usable_fraction: 0.85,
        }
    }

    /// Usable bytes.
    pub fn usable_bytes(&self) -> u64 {
        (self.spec.gpu_memory_bytes as f64 * self.usable_fraction as f64) as u64
    }

    /// Resident cost of keeping `n` models of a class loaded (Table IV's
    /// `weights × n` column).
    pub fn loaded_bytes(&self, model: ReferenceModel, n: usize) -> u64 {
        model.weight_bytes() * n as u64
    }

    /// Peak execution footprint of a model class (Table IV "Execution").
    pub fn execution_bytes(&self, model: ReferenceModel) -> u64 {
        model.execution_bytes()
    }

    /// Maximum number of compressed models that can stay cached while the
    /// Anole pipeline (scene encoder + decision model resident, one
    /// compressed model executing) still fits.
    pub fn max_cached_models(&self) -> usize {
        self.max_cached_models_at(ReferenceModel::Yolov3Tiny.weight_bytes())
    }

    /// Byte budget left for cached compressed models once the pipeline's
    /// fixed residents (scene encoder, decision model, one executing
    /// compressed model's workspace) are charged.
    pub fn cache_byte_budget(&self) -> u64 {
        let budget = self.usable_bytes() as i64
            - self.execution_bytes(ReferenceModel::Yolov3Tiny) as i64
            - ReferenceModel::Resnet18.weight_bytes() as i64
            - ReferenceModel::DecisionMlp.weight_bytes() as i64;
        budget.max(0) as u64
    }

    /// Maximum cached compressed models at an explicit per-model footprint.
    ///
    /// [`GpuMemoryModel::max_cached_models`] assumes every cached model
    /// holds f32 weights; quantized models charge their true (~4× smaller)
    /// int8 footprint, so the same budget holds proportionally more of them.
    pub fn max_cached_models_at(&self, per_model_bytes: u64) -> usize {
        if per_model_bytes == 0 {
            return 0;
        }
        (self.cache_byte_budget() / per_model_bytes) as usize
    }

    /// Whether a single deep model (SDM) plus execution workspace fits.
    pub fn fits_deep_model(&self) -> bool {
        self.execution_bytes(ReferenceModel::Yolov3) <= self.usable_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx2_caches_a_handful_of_models() {
        // Fig. 7b: ~5 cached models suffice; the TX2 fits comfortably more,
        // the Nano is the constrained case.
        let tx2 = GpuMemoryModel::for_device(DeviceKind::JetsonTx2Nx);
        assert!(tx2.max_cached_models() >= 10, "{}", tx2.max_cached_models());

        let nano = GpuMemoryModel::for_device(DeviceKind::JetsonNano);
        assert!(
            (2..=16).contains(&nano.max_cached_models()),
            "nano fits {}",
            nano.max_cached_models()
        );
        assert!(tx2.max_cached_models() > nano.max_cached_models());
    }

    #[test]
    fn loaded_bytes_scale_linearly() {
        let m = GpuMemoryModel::for_device(DeviceKind::Laptop);
        assert_eq!(
            m.loaded_bytes(ReferenceModel::Yolov3Tiny, 19),
            19 * 34_000_000
        );
    }

    #[test]
    fn deep_model_fits_tx2_but_is_borderline_on_nano() {
        assert!(GpuMemoryModel::for_device(DeviceKind::JetsonTx2Nx).fits_deep_model());
        // Nano: 1.73 GB execution footprint vs 2 GB × 0.85 usable — the deep
        // model does not fit without giving it nearly the whole GPU.
        let mut nano = GpuMemoryModel::for_device(DeviceKind::JetsonNano);
        assert!(!nano.fits_deep_model());
        nano.usable_fraction = 0.9;
        assert!(nano.fits_deep_model());
    }

    #[test]
    fn zero_budget_degrades_gracefully() {
        let mut m = GpuMemoryModel::for_device(DeviceKind::JetsonNano);
        m.usable_fraction = 0.1;
        assert_eq!(m.max_cached_models(), 0);
        assert_eq!(m.cache_byte_budget(), 0);
        assert_eq!(m.max_cached_models_at(1), 0);
    }

    #[test]
    fn quantized_models_quadruple_cache_capacity() {
        let nano = GpuMemoryModel::for_device(DeviceKind::JetsonNano);
        let fp32_bytes = ReferenceModel::Yolov3Tiny.weight_bytes();
        // int8 payload + per-row scales land near a quarter of f32.
        let int8_bytes = fp32_bytes / 4 + fp32_bytes / 100;
        let fp32_slots = nano.max_cached_models_at(fp32_bytes);
        let int8_slots = nano.max_cached_models_at(int8_bytes);
        assert_eq!(fp32_slots, nano.max_cached_models());
        assert!(
            int8_slots >= 3 * fp32_slots,
            "int8 {int8_slots} vs fp32 {fp32_slots}"
        );
        assert_eq!(nano.max_cached_models_at(0), 0);
    }
}
