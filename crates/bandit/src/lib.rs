//! Adaptive scene sampling (paper §IV-B): Thompson sampling over Beta
//! posteriors, the coupon-collector well-sampledness criterion, and the
//! random-sampling baseline of Figure 3.
//!
//! The offline profiler must build, for every compressed model `Mᵢ`, a
//! balanced subset `Ψᵢ^sub` of samples that the model predicts well. Testing
//! every model on every sample is too expensive, and sampling the pooled
//! dataset uniformly yields sets whose sizes mirror dataset bias (Fig. 3a).
//! The paper instead treats each model's training set `Γᵢ` as a bandit arm:
//! a Beta posterior per arm, pick the not-yet-well-sampled arm with the
//! highest Thompson draw, sample from that `Γᵢ`, then reward the chosen arm
//! (α+1) and penalize the rest (β+1).
//!
//! # Examples
//!
//! ```
//! use anole_bandit::{SamplingStrategy, ThompsonSampler};
//! use anole_tensor::{rng_from_seed, Seed};
//!
//! let mut sampler = ThompsonSampler::new(&[100, 1000, 10_000], 0.9);
//! let mut rng = rng_from_seed(Seed(1));
//! while let Some(arm) = sampler.select(&mut rng) {
//!     sampler.record_sampled(arm);
//!     if sampler.total_samples() >= 200 { break; }
//! }
//! assert!(sampler.counts().iter().all(|&c| c > 0));
//! ```

mod beta;
mod sampler;

pub use beta::BetaPosterior;
pub use sampler::{
    balance_coefficient, well_sampled_threshold, RandomSampler, SamplingStrategy,
    ThompsonSampler,
};
