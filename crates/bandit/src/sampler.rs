//! The adaptive (Thompson) and random sampling schedulers of §IV-B.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::BetaPosterior;

/// Minimum number of draws from a training set of `set_size` elements needed
/// to have covered each element with confidence `theta` (paper §IV-B):
///
/// `|Sᵢ| > log(1 − θ^(1/|Γᵢ|)) / log(1 − 1/|Γᵢ|)`.
///
/// Returns 0 for empty sets; a singleton set needs one draw.
///
/// # Panics
///
/// Panics if `theta` is not in `(0, 1)`.
///
/// # Examples
///
/// ```
/// let t = anole_bandit::well_sampled_threshold(1000, 0.9);
/// // Coupon collector: roughly n·ln(n/(1-θ^(1/n))) ≈ n·(ln n + extra).
/// assert!(t > 1000.0 * (1000.0f64).ln() * 0.9);
/// ```
pub fn well_sampled_threshold(set_size: usize, theta: f64) -> f64 {
    assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
    match set_size {
        0 => 0.0,
        1 => 1.0,
        n => {
            let n = n as f64;
            let num = (1.0 - theta.powf(1.0 / n)).ln();
            let den = (1.0 - 1.0 / n).ln();
            num / den
        }
    }
}

/// Balance of a count vector: ratio of the smallest to the largest count,
/// in `[0, 1]`, 1 meaning perfectly balanced (used to compare Fig. 3a/3b).
///
/// Returns 1.0 for empty input and 0.0 if any count is zero while another
/// is not.
pub fn balance_coefficient(counts: &[usize]) -> f64 {
    let (mut min, mut max) = (usize::MAX, 0usize);
    for &c in counts {
        min = min.min(c);
        max = max.max(c);
    }
    if counts.is_empty() || max == 0 {
        1.0
    } else {
        min as f64 / max as f64
    }
}

/// Common interface of the two sampling schedulers so experiments can swap
/// them (Fig. 3 compares random vs adaptive).
pub trait SamplingStrategy {
    /// Picks the training-set arm to sample next, or `None` when every arm
    /// is well sampled.
    fn select<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<usize>;

    /// Records that one sample was drawn from `arm`'s training set.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    fn record_sampled(&mut self, arm: usize);

    /// Number of samples drawn from each arm so far.
    fn counts(&self) -> &[usize];

    /// Total samples drawn so far.
    fn total_samples(&self) -> usize {
        self.counts().iter().sum()
    }
}

/// The paper's adaptive scene-sampling scheduler.
///
/// One Beta posterior per training set `Γᵢ`. Each round draws a Thompson
/// sample for every not-yet-well-sampled arm, selects the arm with the
/// highest draw, and after the caller actually samples that `Γᵢ`, updates
/// every posterior (selected arm α+1, all others β+1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThompsonSampler {
    posteriors: Vec<BetaPosterior>,
    set_sizes: Vec<usize>,
    counts: Vec<usize>,
    theta: f64,
    exhausted: Vec<bool>,
}

impl ThompsonSampler {
    /// Creates a scheduler over arms with the given training-set sizes and
    /// well-sampledness confidence `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not in `(0, 1)`.
    pub fn new(set_sizes: &[usize], theta: f64) -> Self {
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        Self {
            posteriors: vec![BetaPosterior::uniform(); set_sizes.len()],
            set_sizes: set_sizes.to_vec(),
            counts: vec![0; set_sizes.len()],
            theta,
            exhausted: vec![false; set_sizes.len()],
        }
    }

    /// Removes arm `i` from further selection regardless of the
    /// well-sampledness criterion.
    ///
    /// The paper's procedure runs until every `Γᵢ` is well sampled; under a
    /// finite budget κ the selected/passed-over Beta update is
    /// rich-get-richer, so a caller enforcing a per-arm draw cap marks
    /// capped arms exhausted to keep the remaining budget flowing to the
    /// other arms.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_exhausted(&mut self, i: usize) {
        self.exhausted[i] = true;
    }

    /// Whether arm `i` has been marked exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_exhausted(&self, i: usize) -> bool {
        self.exhausted[i]
    }

    /// Whether arm `i` has met the coupon-collector criterion.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_well_sampled(&self, i: usize) -> bool {
        self.counts[i] as f64 > well_sampled_threshold(self.set_sizes[i], self.theta)
    }

    /// Borrows the per-arm posteriors (for inspection and plotting).
    pub fn posteriors(&self) -> &[BetaPosterior] {
        &self.posteriors
    }
}

impl SamplingStrategy for ThompsonSampler {
    fn select<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.posteriors.len() {
            if self.is_well_sampled(i) || self.exhausted[i] {
                continue;
            }
            let draw = self.posteriors[i].sample(rng);
            match best {
                Some((_, b)) if draw <= b => {}
                _ => best = Some((i, draw)),
            }
        }
        best.map(|(i, _)| i)
    }

    fn record_sampled(&mut self, arm: usize) {
        assert!(arm < self.counts.len(), "arm index out of range");
        self.counts[arm] += 1;
        for (i, p) in self.posteriors.iter_mut().enumerate() {
            if i == arm {
                p.observe_selected();
            } else {
                p.observe_passed_over();
            }
        }
    }

    fn counts(&self) -> &[usize] {
        &self.counts
    }
}

/// The random-sampling baseline of Fig. 3a.
///
/// Drawing a uniform sample from the pooled dataset `D` lands in `Γᵢ` with
/// probability proportional to `|Γᵢ|`, so arm selection is size-weighted —
/// exactly the bias the adaptive scheduler removes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomSampler {
    set_sizes: Vec<usize>,
    counts: Vec<usize>,
    total_size: usize,
}

impl RandomSampler {
    /// Creates the baseline over arms with the given training-set sizes.
    pub fn new(set_sizes: &[usize]) -> Self {
        Self {
            set_sizes: set_sizes.to_vec(),
            counts: vec![0; set_sizes.len()],
            total_size: set_sizes.iter().sum(),
        }
    }
}

impl SamplingStrategy for RandomSampler {
    fn select<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<usize> {
        if self.total_size == 0 {
            return None;
        }
        let mut target = rng.gen_range(0..self.total_size);
        for (i, &s) in self.set_sizes.iter().enumerate() {
            if target < s {
                return Some(i);
            }
            target -= s;
        }
        None
    }

    fn record_sampled(&mut self, arm: usize) {
        assert!(arm < self.counts.len(), "arm index out of range");
        self.counts[arm] += 1;
    }

    fn counts(&self) -> &[usize] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anole_tensor::{rng_from_seed, Seed};

    #[test]
    fn threshold_grows_with_set_size_and_theta() {
        let t1 = well_sampled_threshold(100, 0.9);
        let t2 = well_sampled_threshold(1000, 0.9);
        let t3 = well_sampled_threshold(1000, 0.99);
        assert!(t2 > t1);
        assert!(t3 > t2);
        assert_eq!(well_sampled_threshold(0, 0.9), 0.0);
        assert_eq!(well_sampled_threshold(1, 0.9), 1.0);
    }

    #[test]
    #[should_panic(expected = "theta must be in (0, 1)")]
    fn threshold_rejects_bad_theta() {
        let _ = well_sampled_threshold(10, 1.0);
    }

    #[test]
    fn balance_coefficient_behaviour() {
        assert_eq!(balance_coefficient(&[]), 1.0);
        assert_eq!(balance_coefficient(&[0, 0]), 1.0);
        assert_eq!(balance_coefficient(&[5, 0]), 0.0);
        assert_eq!(balance_coefficient(&[10, 10]), 1.0);
        assert!((balance_coefficient(&[5, 10]) - 0.5).abs() < 1e-12);
    }

    /// Fig. 3's comparison. Random sampling of the pooled dataset lands in
    /// each model's implicit distribution Ψᵢ proportionally to its
    /// prevalence, which is power-law skewed (Fig. 4b). Adaptive sampling
    /// draws from the comparably sized training clusters Γᵢ until each is
    /// well sampled, so its counts follow the (mildly varying) thresholds.
    #[test]
    fn thompson_is_more_balanced_than_random() {
        // Power-law prevalence of the 16 models in the pooled dataset.
        let prevalence: Vec<usize> = (0..16).map(|i| 10_000 / ((i + 1) * (i + 1))).collect();
        let budget = 4000;
        let mut rng = rng_from_seed(Seed(10));
        let mut random = RandomSampler::new(&prevalence);
        for _ in 0..budget {
            let arm = random.select(&mut rng).unwrap();
            random.record_sampled(arm);
        }

        // Comparable per-model training clusters produced by Algorithm 1.
        let cluster_sizes: Vec<usize> = (0..16).map(|i| 60 + 10 * (i % 5)).collect();
        let mut rng = rng_from_seed(Seed(11));
        let mut thompson = ThompsonSampler::new(&cluster_sizes, 0.5);
        while let Some(arm) = thompson.select(&mut rng) {
            thompson.record_sampled(arm);
        }

        let b_rand = balance_coefficient(random.counts());
        let b_thom = balance_coefficient(thompson.counts());
        assert!(
            b_thom > 5.0 * b_rand,
            "thompson {b_thom:.3} vs random {b_rand:.3}"
        );
        assert!(thompson.counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn thompson_stops_when_all_well_sampled() {
        let sizes = vec![3, 4];
        let mut sampler = ThompsonSampler::new(&sizes, 0.5);
        let mut rng = rng_from_seed(Seed(4));
        let mut steps = 0;
        while let Some(arm) = sampler.select(&mut rng) {
            sampler.record_sampled(arm);
            steps += 1;
            assert!(steps < 10_000, "did not terminate");
        }
        for i in 0..sizes.len() {
            assert!(sampler.is_well_sampled(i));
        }
    }

    #[test]
    fn thompson_prefers_undersampled_arms() {
        let sizes = vec![1000, 1000];
        let mut sampler = ThompsonSampler::new(&sizes, 0.9);
        // Pretend arm 0 has been sampled heavily: its posterior saw many
        // selections, arm 1 many pass-overs — now bias the check the other
        // way: arm 1's posterior mean is low, so Thompson draws for arm 0
        // stay high. The *well-sampled filter* is what restores balance.
        for _ in 0..200 {
            sampler.record_sampled(0);
        }
        assert!(sampler.posteriors()[0].mean() > sampler.posteriors()[1].mean());
        // Force arm 0 well-sampled; selection must now always pick arm 1.
        let mut s2 = ThompsonSampler::new(&[2, 1_000_000], 0.5);
        s2.record_sampled(0);
        s2.record_sampled(0);
        s2.record_sampled(0);
        assert!(s2.is_well_sampled(0));
        let mut rng = rng_from_seed(Seed(5));
        for _ in 0..10 {
            assert_eq!(s2.select(&mut rng), Some(1));
        }
    }

    #[test]
    fn random_sampler_tracks_prevalence() {
        let sizes = vec![100, 900];
        let mut sampler = RandomSampler::new(&sizes);
        let mut rng = rng_from_seed(Seed(6));
        for _ in 0..5000 {
            let arm = sampler.select(&mut rng).unwrap();
            sampler.record_sampled(arm);
        }
        let frac = sampler.counts()[1] as f64 / sampler.total_samples() as f64;
        assert!((frac - 0.9).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn empty_random_sampler_selects_none() {
        let mut s = RandomSampler::new(&[]);
        let mut rng = rng_from_seed(Seed(7));
        assert_eq!(s.select(&mut rng), None);
    }

    #[test]
    #[should_panic(expected = "arm index out of range")]
    fn record_out_of_range_panics() {
        let mut s = RandomSampler::new(&[5]);
        s.record_sampled(1);
    }
}
