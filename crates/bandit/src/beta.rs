//! Beta posterior used by the Thompson scheduler.

use rand::Rng;
use rand_distr::{Beta, Distribution};
use serde::{Deserialize, Serialize};

/// A `Beta(α, β)` posterior over an arm's selection propensity.
///
/// Follows the paper's update rule exactly: when the arm's training set is
/// the one sampled in a round, `α ← α + 1`; otherwise `β ← β + 1`.
///
/// # Examples
///
/// ```
/// use anole_bandit::BetaPosterior;
///
/// let mut p = BetaPosterior::uniform();
/// p.observe_selected();
/// p.observe_passed_over();
/// assert_eq!((p.alpha(), p.beta()), (2.0, 2.0));
/// assert!((p.mean() - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaPosterior {
    alpha: f64,
    beta: f64,
}

impl BetaPosterior {
    /// The uninformative `Beta(1, 1)` prior.
    pub fn uniform() -> Self {
        Self { alpha: 1.0, beta: 1.0 }
    }

    /// Creates a posterior with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive");
        Self { alpha, beta }
    }

    /// The α parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The β parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Posterior mean `α / (α + β)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Records that this arm's training set was the one sampled this round.
    pub fn observe_selected(&mut self) {
        self.alpha += 1.0;
    }

    /// Records that another arm was sampled this round.
    pub fn observe_passed_over(&mut self) {
        self.beta += 1.0;
    }

    /// Draws a Thompson sample from the posterior.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Beta::new(self.alpha, self.beta)
            .expect("parameters are validated positive")
            .sample(rng)
    }
}

impl Default for BetaPosterior {
    fn default() -> Self {
        Self::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anole_tensor::{rng_from_seed, Seed};

    #[test]
    fn updates_follow_paper_rule() {
        let mut p = BetaPosterior::uniform();
        for _ in 0..3 {
            p.observe_selected();
        }
        for _ in 0..5 {
            p.observe_passed_over();
        }
        assert_eq!(p.alpha(), 4.0);
        assert_eq!(p.beta(), 6.0);
        assert!((p.mean() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn samples_stay_in_unit_interval() {
        let p = BetaPosterior::new(2.5, 7.5);
        let mut rng = rng_from_seed(Seed(1));
        for _ in 0..1000 {
            let x = p.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn sample_mean_approaches_posterior_mean() {
        let p = BetaPosterior::new(8.0, 2.0);
        let mut rng = rng_from_seed(Seed(2));
        let n = 5000;
        let mean: f64 = (0..n).map(|_| p.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - p.mean()).abs() < 0.02, "{mean} vs {}", p.mean());
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_nonpositive_alpha() {
        let _ = BetaPosterior::new(0.0, 1.0);
    }

    #[test]
    fn skewed_posterior_samples_high() {
        let p = BetaPosterior::new(100.0, 1.0);
        let mut rng = rng_from_seed(Seed(3));
        assert!(p.sample(&mut rng) > 0.9);
    }
}
