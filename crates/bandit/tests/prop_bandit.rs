//! Property-based tests of the Thompson scheduler and the well-sampledness
//! criterion.

use anole_bandit::{
    balance_coefficient, well_sampled_threshold, BetaPosterior, RandomSampler, SamplingStrategy,
    ThompsonSampler,
};
use anole_tensor::{rng_from_seed, Seed};
use proptest::prelude::*;

proptest! {
    /// The coupon-collector threshold is monotone in both arguments and
    /// at least the set size (every element needs at least one draw).
    #[test]
    fn threshold_monotone_and_lower_bounded(n in 2usize..5000, theta in 0.05f64..0.95) {
        let t = well_sampled_threshold(n, theta);
        prop_assert!(t >= n as f64, "threshold {t} below set size {n}");
        prop_assert!(well_sampled_threshold(n + 1, theta) > t * 0.999);
        prop_assert!(well_sampled_threshold(n, (theta + 1.0) / 2.0) > t);
    }

    /// Beta posterior mean moves in the right direction under updates.
    #[test]
    fn posterior_mean_moves_correctly(selected in 0u32..50, passed in 0u32..50) {
        let mut p = BetaPosterior::uniform();
        for _ in 0..selected {
            p.observe_selected();
        }
        for _ in 0..passed {
            p.observe_passed_over();
        }
        let expected = (1.0 + selected as f64) / (2.0 + selected as f64 + passed as f64);
        prop_assert!((p.mean() - expected).abs() < 1e-9);
    }

    /// Thompson draws are valid probabilities and respect exhaustion.
    #[test]
    fn scheduler_respects_exhaustion(sizes in proptest::collection::vec(1usize..100, 2..10), seed in 0u64..100) {
        let mut scheduler = ThompsonSampler::new(&sizes, 0.9);
        // Exhaust every arm but the last.
        for i in 0..sizes.len() - 1 {
            scheduler.set_exhausted(i);
        }
        let mut rng = rng_from_seed(Seed(seed));
        for _ in 0..20 {
            match scheduler.select(&mut rng) {
                Some(arm) => prop_assert_eq!(arm, sizes.len() - 1),
                None => break,
            }
            scheduler.record_sampled(sizes.len() - 1);
        }
    }

    /// The scheduler terminates: every arm eventually meets its threshold,
    /// and total draws stay within a small factor of the threshold sum.
    #[test]
    fn scheduler_terminates_within_budget(arms in 2usize..6, size in 2usize..30, seed in 0u64..50) {
        let sizes = vec![size; arms];
        let mut scheduler = ThompsonSampler::new(&sizes, 0.5);
        let mut rng = rng_from_seed(Seed(seed));
        let per_arm = well_sampled_threshold(size, 0.5).ceil() as usize + 1;
        let budget = 4 * arms * per_arm + 64;
        let mut draws = 0usize;
        while let Some(arm) = scheduler.select(&mut rng) {
            scheduler.record_sampled(arm);
            draws += 1;
            prop_assert!(draws <= budget, "no termination after {draws} draws");
        }
        for i in 0..arms {
            prop_assert!(scheduler.is_well_sampled(i));
        }
        // Every arm stopped right after crossing its threshold.
        for &c in scheduler.counts() {
            prop_assert!(c <= per_arm + 1);
        }
        prop_assert!(balance_coefficient(scheduler.counts()) > 0.9);
    }

    /// The prevalence-weighted baseline only returns valid arms, with
    /// empirical frequency roughly proportional to size.
    #[test]
    fn random_sampler_is_size_proportional(weight in 2usize..40, seed in 0u64..50) {
        let sizes = vec![100, 100 * weight];
        let mut sampler = RandomSampler::new(&sizes);
        let mut rng = rng_from_seed(Seed(seed));
        let n = 4000;
        for _ in 0..n {
            let arm = sampler.select(&mut rng).unwrap();
            prop_assert!(arm < 2);
            sampler.record_sampled(arm);
        }
        let expected = weight as f64 / (1.0 + weight as f64);
        let measured = sampler.counts()[1] as f64 / n as f64;
        prop_assert!((measured - expected).abs() < 0.08, "{measured} vs {expected}");
    }
}
