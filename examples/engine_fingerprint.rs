//! Deterministic fingerprint of a full train + serve run, for differential
//! testing: the printed output must be byte-identical whether or not the
//! `obs` feature is enabled (the observability layer is strictly passive).
//!
//! ```text
//! cargo run --release --example engine_fingerprint > without.txt
//! cargo run --release --example engine_fingerprint --features obs > with.txt
//! diff without.txt with.txt
//! ```

use anole::core::gateway::{Gateway, GatewayConfig, SessionSpec};
use anole::core::omi::{DriftDetector, FaultPlan};
use anole::core::{AnoleConfig, AnoleSystem};
use anole::data::{DatasetConfig, DrivingDataset};
use anole::device::DeviceKind;
use anole::tensor::{split_seed, Seed};

/// FNV-1a over a byte stream: dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(1));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(2))?;
    println!("system_hash {:016x}", fnv1a(serde_json::to_string(&system)?.as_bytes()));

    let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(3));
    engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
    let split = dataset.split();
    let mut outcome_bytes = Vec::new();
    for (i, &r) in split.test.iter().take(200).enumerate() {
        let outcome = engine.step(&dataset.frame(r).features)?;
        if i < 5 {
            println!(
                "frame {i}: requested={} used={} hit={} depth={} latency={:?}",
                outcome.requested,
                outcome.used,
                outcome.cache_hit,
                outcome.fallback_depth,
                outcome.latency_ms
            );
        }
        outcome_bytes.extend_from_slice(serde_json::to_string(&outcome)?.as_bytes());
    }
    println!("outcomes_hash {:016x}", fnv1a(&outcome_bytes));
    println!(
        "mean_latency_ms {:?} cache {} usage_hash {:016x}",
        engine.mean_latency_ms(),
        engine.cache_stats(),
        fnv1a(&engine.usage_log().iter().flat_map(|u| u.to_le_bytes()).collect::<Vec<u8>>())
    );

    // The serving gateway under a chaotic fault plan: scheduling, shedding,
    // and batched scoring must also be byte-identical with obs on or off.
    let mut gateway = Gateway::new(
        &system,
        GatewayConfig {
            max_sessions: 32,
            deadline_ms: 150.0,
            slow_factor: 8.0,
            ..GatewayConfig::default()
        },
    )?
    .with_fault_plan(
        FaultPlan::new(Seed(4))
            .with_queue_overflow_rate(0.05)
            .with_slow_consumer_rate(0.3)
            .with_session_stall_rate(0.05)
            .with_scheduler_hiccup_rate(0.1),
    );
    for i in 0..32usize {
        let frames = (0..8)
            .map(|k| dataset.frame(split.test[(i * 5 + k) % split.test.len()]).clone())
            .collect();
        // Half the fleet carries a drift detector: observation is passive, so
        // the fingerprint must not move when detectors are attached, and the
        // drift fields themselves must hash identically with obs on or off.
        let mut spec = SessionSpec::new(frames, split_seed(Seed(5), i as u64));
        if i % 2 == 0 {
            spec = spec.with_drift_detector(DriftDetector::new(4, 0.05).with_hysteresis(2, 2));
        }
        gateway.admit(spec)?;
    }
    let report = gateway.run();
    println!(
        "gateway sessions={} processed={} shed={} windows={} batched={} drift_events={}",
        report.sessions.len(),
        report.frames_processed,
        report.frames_shed,
        report.windows,
        report.batched_frames,
        report.fleet_drift_events()
    );
    println!("gateway_hash {:016x}", fnv1a(serde_json::to_string(&report)?.as_bytes()));
    Ok(())
}
