//! Deterministic fingerprint of a full train + serve run, for differential
//! testing: the printed output must be byte-identical whether or not the
//! `obs` feature is enabled (the observability layer is strictly passive).
//!
//! ```text
//! cargo run --release --example engine_fingerprint > without.txt
//! cargo run --release --example engine_fingerprint --features obs > with.txt
//! diff without.txt with.txt
//! ```

use anole::core::{AnoleConfig, AnoleSystem};
use anole::data::{DatasetConfig, DrivingDataset};
use anole::device::DeviceKind;
use anole::tensor::Seed;

/// FNV-1a over a byte stream: dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(1));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(2))?;
    println!("system_hash {:016x}", fnv1a(serde_json::to_string(&system)?.as_bytes()));

    let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(3));
    engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
    let split = dataset.split();
    let mut outcome_bytes = Vec::new();
    for (i, &r) in split.test.iter().take(200).enumerate() {
        let outcome = engine.step(&dataset.frame(r).features)?;
        if i < 5 {
            println!(
                "frame {i}: requested={} used={} hit={} depth={} latency={:?}",
                outcome.requested,
                outcome.used,
                outcome.cache_hit,
                outcome.fallback_depth,
                outcome.latency_ms
            );
        }
        outcome_bytes.extend_from_slice(serde_json::to_string(&outcome)?.as_bytes());
    }
    println!("outcomes_hash {:016x}", fnv1a(&outcome_bytes));
    println!(
        "mean_latency_ms {:?} cache {} usage_hash {:016x}",
        engine.mean_latency_ms(),
        engine.cache_stats(),
        fnv1a(&engine.usage_log().iter().flat_map(|u| u.to_le_bytes()).collect::<Vec<u8>>())
    );
    Ok(())
}
