//! Cache tuning on a memory-starved device: how many compressed models
//! should a 2 GB Jetson Nano keep resident, and which eviction policy?
//!
//! Reproduces the Fig. 7(b) sweep on fast-changing spliced streams and the
//! cache-policy ablation, then checks the choice against the Nano's actual
//! GPU-memory budget.
//!
//! ```text
//! cargo run --release --example cache_tuning
//! ```

use anole::cache::EvictionPolicy;
use anole::core::{AnoleConfig, AnoleSystem, CacheConfig};
use anole::data::{synthesize_fast_changing, DatasetConfig, DrivingDataset, SpliceConfig};
use anole::detect::DetectionCounts;
use anole::device::{DeviceKind, GpuMemoryModel};
use anole::tensor::{split_seed, Seed};

fn run(
    dataset: &DrivingDataset,
    base: &AnoleSystem,
    capacity: usize,
    policy: EvictionPolicy,
    seed: Seed,
) -> Result<(f64, f32), Box<dyn std::error::Error>> {
    let mut system = base.clone();
    system.set_cache_config(CacheConfig { capacity, policy });
    let clips = synthesize_fast_changing(
        dataset,
        &SpliceConfig { clip_count: 6, segments_per_clip: 5, segment_len: 10 },
        seed,
    );
    let mut counts = DetectionCounts::default();
    let mut hits = 0;
    let mut lookups = 0;
    for clip in &clips {
        let mut engine = system.online_engine(DeviceKind::JetsonNano, seed);
        engine.warm(&(0..capacity.min(system.repository().len())).collect::<Vec<_>>());
        for &r in &clip.frames {
            let frame = dataset.frame(r);
            let out = engine.step(&frame.features)?;
            counts.accumulate(&out.detections, &frame.truth);
        }
        hits += engine.cache_stats().hits;
        lookups += engine.cache_stats().lookups();
    }
    let miss = if lookups == 0 { 0.0 } else { 1.0 - hits as f64 / lookups as f64 };
    Ok((miss, counts.f1()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = Seed(88);
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), split_seed(seed, 0));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), split_seed(seed, 1))?;

    let memory = GpuMemoryModel::for_device(DeviceKind::JetsonNano);
    println!(
        "Jetson Nano budget: {} MB usable → at most {} cached compressed models",
        memory.usable_bytes() / 1_000_000,
        memory.max_cached_models()
    );

    println!("\ncapacity sweep (LFU, fast-changing streams):");
    println!("{:>9} {:>10} {:>7}", "capacity", "miss rate", "F1");
    let max = system.repository().len().min(memory.max_cached_models().max(1));
    for capacity in 1..=max {
        let (miss, f1) = run(&dataset, &system, capacity, EvictionPolicy::Lfu, split_seed(seed, 2))?;
        println!("{capacity:>9} {miss:>10.3} {f1:>7.3}");
    }

    println!("\npolicy comparison at capacity 2 (the constrained case):");
    for policy in [EvictionPolicy::Lfu, EvictionPolicy::Lru, EvictionPolicy::Fifo] {
        let (miss, f1) = run(&dataset, &system, 2, policy, split_seed(seed, 3))?;
        println!("  {policy:<5} miss {miss:.3}  F1 {f1:.3}");
    }
    println!("\n(the paper deploys LFU with ~5 resident models; Fig. 7b)");
    Ok(())
}
