//! UAV patrol: the paper's real-world deployment (§VI-F) as a runnable
//! scenario. A TX2-class UAV flies a patrol route whose scenes change as it
//! crosses the city — highway, urban canyon, a tunnel underpass, and a night
//! return leg — while Anole switches compressed models on the fly.
//!
//! ```text
//! cargo run --release --example uav_patrol
//! ```

use anole::core::omi::SwitchStats;
use anole::core::{AnoleConfig, AnoleSystem};
use anole::data::{
    ClipId, DatasetConfig, DatasetSource, DrivingDataset, Location, SceneAttributes, TimeOfDay,
    Weather,
};
use anole::detect::DetectionCounts;
use anole::device::{DeviceKind, PowerMode, PowerModel};
use anole::nn::ReferenceModel;
use anole::tensor::{split_seed, Seed};

/// One leg of the patrol route.
struct Leg {
    name: &'static str,
    attrs: SceneAttributes,
    frames: usize,
}

fn route() -> Vec<Leg> {
    use Location::*;
    use TimeOfDay::*;
    use Weather::*;
    vec![
        Leg { name: "take-off over highway", attrs: SceneAttributes::new(Clear, Highway, Daytime), frames: 60 },
        Leg { name: "urban canyon sweep", attrs: SceneAttributes::new(Clear, Urban, Daytime), frames: 90 },
        Leg { name: "tunnel underpass", attrs: SceneAttributes::new(Clear, Tunnel, Daytime), frames: 40 },
        Leg { name: "residential loop", attrs: SceneAttributes::new(Overcast, Residential, Daytime), frames: 60 },
        Leg { name: "dusk bridge crossing", attrs: SceneAttributes::new(Overcast, Bridge, DawnDusk), frames: 50 },
        Leg { name: "night return leg", attrs: SceneAttributes::new(Clear, Urban, Night), frames: 70 },
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = Seed(20240624);
    println!("== offline scene profiling (on the \"cloud server\") ==");
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), split_seed(seed, 0));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), split_seed(seed, 1))?;
    println!(
        "model repository: {} compressed models; decision model ready\n",
        system.repository().len()
    );

    println!("== UAV patrol over Shanghai (simulated TX2 NX) ==");
    let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, split_seed(seed, 2));
    engine.warm(&(0..system.config().cache.capacity).collect::<Vec<_>>());

    let mut total = DetectionCounts::default();
    for (i, leg) in route().iter().enumerate() {
        // Fresh footage from the same world: never part of training.
        let clip = dataset.world().generate_clip(
            ClipId(9000 + i),
            DatasetSource::Shd,
            leg.attrs,
            leg.frames,
            1.0,
            split_seed(seed, 100 + i as u64),
        );
        let mut leg_counts = DetectionCounts::default();
        let start_frames = engine.usage_log().len();
        for frame in &clip.frames {
            let outcome = engine.step(&frame.features)?;
            leg_counts.accumulate(&outcome.detections, &frame.truth);
            total.accumulate(&outcome.detections, &frame.truth);
        }
        let used = &engine.usage_log()[start_frames..];
        let top_model = {
            let mut counts = std::collections::HashMap::new();
            for &m in used {
                *counts.entry(m).or_insert(0usize) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).map(|(m, _)| m).unwrap_or(0)
        };
        println!(
            "  leg {i}: {:<24} [{}] F1 {:.3}, mostly model M{top_model}",
            leg.name,
            leg.attrs,
            leg_counts.f1()
        );
    }

    let switches = SwitchStats::of(engine.usage_log());
    println!("\n== patrol summary ==");
    println!("  overall detection: {total}");
    println!(
        "  model switches: {} (mean scene duration {:.1} frames)",
        switches.switches, switches.mean
    );
    println!(
        "  mean frame latency {:.1} ms, hedge rate {:.2}, cache {}",
        engine.mean_latency_ms(),
        engine.hedge_rate(),
        engine.cache_stats()
    );

    // Endurance estimate against the flight battery.
    let power = PowerModel::for_device(DeviceKind::JetsonTx2Nx);
    let mode = PowerMode::tx2_modes()[3];
    let anole_power = power.evaluate(
        &[ReferenceModel::Resnet18, ReferenceModel::DecisionMlp, ReferenceModel::Yolov3Tiny],
        mode,
    );
    let sdm_power = power.evaluate(&[ReferenceModel::Yolov3], mode);
    println!(
        "  inference power at {}: Anole {:.1} W vs SDM {:.1} W ({:.0}% saved → longer flight time)",
        mode.label(),
        anole_power.watts,
        sdm_power.watts,
        (1.0 - anole_power.watts / sdm_power.watts) * 100.0
    );
    Ok(())
}
