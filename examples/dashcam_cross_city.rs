//! Dashcam cross-city transfer: the paper's motivating deployment — a
//! vehicle fleet whose dashcams were trained on footage from two regions
//! (KITTI-like and BDD100k-like) must keep detecting when cars ship to a
//! new city (SHD-like Shanghai footage, including tunnels and night
//! driving the fleet rarely saw).
//!
//! Compares Anole against SDM / SSM / CDG / DMM on every unseen clip.
//!
//! ```text
//! cargo run --release --example dashcam_cross_city
//! ```

use anole::core::eval::{evaluate_refs, new_scene_experiment};
use anole::core::{AnoleConfig, AnoleSystem, MethodKind, Sdm};
use anole::data::{DatasetConfig, DrivingDataset};
use anole::device::DeviceKind;
use anole::tensor::{split_seed, Seed};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = Seed(3407);
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), split_seed(seed, 0));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), split_seed(seed, 1))?;

    println!("== unseen-scene transfer (Table III protocol) ==");
    let report = new_scene_experiment(&dataset, &system, split_seed(seed, 2))?;
    println!("{:<28} {:>7} {:>7} {:>7} {:>7} {:>7}", "unseen clip", "Anole", "SDM", "SSM", "CDG", "DMM");
    for row in &report.rows {
        println!(
            "{:<28} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            format!("{} / {}", row.source, row.attributes),
            row.of(MethodKind::Anole).unwrap_or(0.0),
            row.of(MethodKind::Sdm).unwrap_or(0.0),
            row.of(MethodKind::Ssm).unwrap_or(0.0),
            row.of(MethodKind::Cdg).unwrap_or(0.0),
            row.of(MethodKind::Dmm).unwrap_or(0.0),
        );
    }
    println!(
        "{:<28} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
        "MEAN",
        report.mean_f1(MethodKind::Anole).unwrap_or(0.0),
        report.mean_f1(MethodKind::Sdm).unwrap_or(0.0),
        report.mean_f1(MethodKind::Ssm).unwrap_or(0.0),
        report.mean_f1(MethodKind::Cdg).unwrap_or(0.0),
        report.mean_f1(MethodKind::Dmm).unwrap_or(0.0),
    );
    if let Some(best) = report.best_method() {
        println!("best method on the new city: {best}");
    }

    // Show the per-window dynamics on one unseen clip: where the general
    // deep model loses frames, and what the specialist router does instead.
    let split = dataset.split();
    if let Some(&clip) = split.unseen_clips.first() {
        println!(
            "\n== per-window F1 on unseen clip {} ({}) ==",
            clip,
            dataset.clips()[clip].attributes
        );
        let stream = dataset.clip_frames(clip);
        let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, split_seed(seed, 3));
        engine.warm(&(0..system.config().cache.capacity).collect::<Vec<_>>());
        let anole = evaluate_refs(&mut engine, &dataset, &stream, 10)?;
        let mut sdm = Sdm::train(&dataset, &split.train, system.config(), split_seed(seed, 4))?;
        let sdm_result = evaluate_refs(&mut sdm, &dataset, &stream, 10)?;
        println!("window   Anole    SDM");
        for (i, (a, s)) in anole.windowed.iter().zip(sdm_result.windowed.iter()).enumerate() {
            let marker = if a > s { "  <- Anole ahead" } else { "" };
            println!("{:>6} {:>7.3} {:>7.3}{marker}", i, a, s);
        }
    }
    Ok(())
}
