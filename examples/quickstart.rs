//! Quickstart: train the full Anole system on a small synthetic driving
//! dataset and run online inference on a simulated Jetson TX2 NX.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! With `--features obs` the run additionally prints a metrics/span summary
//! collected by the observability layer (see `docs/observability.md`).

use anole::core::omi::Telemetry;
use anole::core::{AnoleConfig, AnoleSystem};
use anole::data::{DatasetConfig, DrivingDataset};
use anole::detect::DetectionCounts;
use anole::device::DeviceKind;
use anole::tensor::Seed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate the synthetic driving world (stands in for KITTI/BDD/SHD).
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(1));
    println!(
        "dataset: {} clips, {} frames, {} unseen clips",
        dataset.clips().len(),
        dataset.frame_count(),
        dataset.clips().iter().filter(|c| !c.seen).count()
    );

    // 2. Offline scene profiling: scene encoder, Algorithm 1 repository,
    //    Thompson-sampled suitability sets, decision model.
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(2))?;
    println!(
        "trained {} compressed models across {} clustering levels; \
         decision model ranks {} models",
        system.repository().len(),
        system.repository().levels_examined,
        system.decision().model_count()
    );

    // 3. Online model inference on the device simulator.
    let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(3));
    engine.warm(&(0..system.config().cache.capacity).collect::<Vec<_>>());

    let split = dataset.split();
    let mut counts = DetectionCounts::default();
    let mut telemetry = Telemetry::new();
    for &r in split.test.iter().take(200) {
        let frame = dataset.frame(r);
        let outcome = engine.step(&frame.features)?;
        counts.accumulate(&outcome.detections, &frame.truth);
        telemetry.record(&outcome, Some(&frame.truth));
    }
    println!(
        "online inference over {} frames: {}",
        engine.usage_log().len(),
        counts
    );
    println!(
        "mean latency {:.1} ms | cache {} | hedge rate {:.2}",
        engine.mean_latency_ms(),
        engine.cache_stats(),
        engine.hedge_rate()
    );
    let summary = telemetry.summary();
    println!(
        "latency p50/p95/p99 {:.2}/{:.2}/{:.2} ms | hit rate {:.2} | mean fallback depth {:.2}",
        summary.p50_latency_ms,
        summary.p95_latency_ms,
        summary.p99_latency_ms,
        summary.hit_rate,
        summary.mean_fallback_depth
    );
    println!("\nfirst telemetry rows (full CSV available via Telemetry::to_csv):");
    for line in telemetry.to_csv().lines().take(4) {
        println!("  {line}");
    }

    // 4. Observability: a no-op unless built with `--features obs`.
    if anole::obs::enabled() {
        let snap = anole::obs::snapshot();
        println!(
            "\nobservability: {} distinct metrics, {} spans recorded",
            snap.metric_names().len(),
            snap.spans.len()
        );
        for name in snap.metric_names() {
            println!("  {name}");
        }
        println!("(JSON snapshot via anole::obs::to_json(), trace via anole::obs::render_trace())");
    }
    Ok(())
}
