//! Deterministic gateway fingerprint for differential testing of the fleet
//! observability stack: the printed serving fingerprint must be
//! byte-identical between a plain run and an `--instrumented` run (SLO
//! burn-rate engine + per-session flight recorders armed), because both are
//! strictly passive — and, like `engine_fingerprint`, with the `obs`
//! feature on or off.
//!
//! ```text
//! cargo run --release --example gateway_fingerprint > plain.txt
//! cargo run --release --example gateway_fingerprint -- --instrumented > inst.txt
//! diff plain.txt inst.txt
//! ```
//!
//! The hash covers only serving-relevant report fields: the alert list and
//! flight dumps (present only when instrumented, by design) are stripped
//! before hashing, so a clean diff proves instrumentation changed *nothing
//! else*.

use anole::core::gateway::{Gateway, GatewayConfig, SessionSpec};
use anole::core::omi::FaultPlan;
use anole::core::{AnoleConfig, AnoleSystem};
use anole::data::{DatasetConfig, DrivingDataset};
use anole::obs::SloSpec;
use anole::tensor::{split_seed, Seed};

/// FNV-1a over a byte stream: dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instrumented = std::env::args().any(|a| a == "--instrumented");

    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(11));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(12))?;
    let split = dataset.split();

    // A chaotic, shed-heavy run so the SLO engine has something to page
    // about and quarantined sessions have flight rings worth dumping.
    let config = GatewayConfig {
        max_sessions: 32,
        deadline_ms: 120.0,
        slow_factor: 8.0,
        flight_recorder_frames: if instrumented { 8 } else { 0 },
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::new(&system, config)?.with_fault_plan(
        FaultPlan::new(Seed(13))
            .with_queue_overflow_rate(0.05)
            .with_slow_consumer_rate(0.4)
            .with_session_stall_rate(0.05)
            .with_scheduler_hiccup_rate(0.1),
    );
    if instrumented {
        gateway = gateway.with_slos(vec![
            SloSpec::error_ratio(
                "gateway-shed-ratio",
                "gateway.frames.shed",
                "gateway.frames.total",
                0.01,
            )
            .with_slow_windows(8),
            SloSpec::quantile("gateway-step-latency", "gateway.step.latency_ms", 0.99, 120.0)
                .with_slow_windows(8),
        ]);
    }
    for i in 0..24usize {
        let frames = (0..10)
            .map(|k| dataset.frame(split.test[(i * 7 + k) % split.test.len()]).clone())
            .collect();
        let mut spec = SessionSpec::new(frames, split_seed(Seed(14), i as u64));
        if i == 5 {
            spec.inject_panic = true;
        }
        gateway.admit(spec)?;
    }
    let mut report = gateway.run();

    // Strip the instrumentation-only fields before hashing: everything left
    // is serving behaviour and must not move when SLOs + recorders are on.
    report.slo_violations.clear();
    for s in &mut report.sessions {
        s.flight = None;
    }
    for q in &mut report.quarantined {
        q.flight = None;
    }
    println!(
        "gateway sessions={} processed={} shed={} dropped={} windows={} quarantined={}",
        report.sessions.len(),
        report.frames_processed,
        report.frames_shed,
        report.frames_dropped,
        report.windows,
        report.quarantined.len(),
    );
    println!("serving_hash {:016x}", fnv1a(serde_json::to_string(&report)?.as_bytes()));
    Ok(())
}
