//! Fleet expansion: the paper's §II case-3 remedy in action.
//!
//! A deployed fleet meets a scene no repository model covers (the paper:
//! "a remedy for this case is to train new models to deal with x and the
//! like in the future"). The fleet uploads labelled footage overnight; the
//! cloud trains one new specialist, widens the decision model, and ships
//! both back. This example measures detection quality on the exotic scene
//! before and after.
//!
//! ```text
//! cargo run --release --example fleet_expansion
//! ```

use anole::core::omi::{DriftDetector, DriftState};
use anole::core::{AnoleConfig, AnoleSystem};
use anole::data::{
    ClipId, DatasetConfig, DatasetSource, DrivingDataset, Location, SceneAttributes, TimeOfDay,
    Weather,
};
use anole::detect::DetectionCounts;
use anole::device::DeviceKind;
use anole::tensor::{split_seed, Seed};

fn score(system: &AnoleSystem, frames: &[anole::data::Frame], seed: Seed) -> (f32, usize) {
    let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, seed);
    engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
    let mut counts = DetectionCounts::default();
    let mut newest_used = 0;
    let newest = system.repository().len() - 1;
    for frame in frames {
        let out = engine.step(&frame.features).expect("inference");
        counts.accumulate(&out.detections, &frame.truth);
        if out.used == newest {
            newest_used += 1;
        }
    }
    (counts.f1(), newest_used)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = Seed(777);
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), split_seed(seed, 0));
    let mut system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), split_seed(seed, 1))?;
    println!("deployed repository: {} compressed models", system.repository().len());

    // The fleet drives into a scene the training data never contained.
    let exotic = SceneAttributes::new(Weather::Foggy, Location::TollBooth, TimeOfDay::Night);
    let collected = dataset.world().generate_clip(
        ClipId(5000),
        DatasetSource::Shd,
        exotic,
        150,
        1.0,
        split_seed(seed, 2),
    );
    let tomorrow = dataset.world().generate_clip(
        ClipId(5001),
        DatasetSource::Shd,
        exotic,
        80,
        1.0,
        split_seed(seed, 3),
    );

    // The deployed drift detector is what tells the fleet to upload footage
    // in the first place: calibrated on validation confidence, it fires on
    // the exotic stream.
    let split = dataset.split();
    let mut detector = DriftDetector::calibrated(&system, &dataset, &split.val, 15, 0.1)?;
    let drifting = collected
        .frames
        .iter()
        .filter(|f| {
            detector.observe_frame(&system, &f.features).expect("inference") == DriftState::Drifting
        })
        .count();
    println!(
        "drift detector (floor {:.2}): {}/{} collected frames flagged as case-3",
        detector.floor(),
        drifting,
        collected.frames.len()
    );

    let (before, _) = score(&system, &tomorrow.frames, split_seed(seed, 4));
    println!("F1 on '{exotic}' before expansion: {before:.3}");

    let new_id = system.extend_with_frames(&dataset, &collected.frames, split_seed(seed, 5))?;
    println!(
        "overnight: trained specialist M{new_id} (validation F1 {:.3}), decision head retrained \
         over {} models",
        system.repository().model(new_id).validation_f1,
        system.decision().model_count()
    );

    let (after, newest_used) = score(&system, &tomorrow.frames, split_seed(seed, 4));
    println!(
        "F1 on '{exotic}' after expansion: {after:.3} (+{:.3}); new model served {}/{} frames",
        after - before,
        newest_used,
        tomorrow.frames.len()
    );
    Ok(())
}
