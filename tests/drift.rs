//! End-to-end drift robustness: the closed offline↔online loop.
//!
//! A seeded drift world degrades a deployed system; the on-device detector
//! flags the shift after its onset (and never before); the guarded continual
//! re-profile recovers routed F1 on the drifted regime while the frozen
//! baseline stays degraded; and an injected regressed candidate is caught at
//! the canary gate and rolled back with zero sessions ever served from it.

use std::path::PathBuf;
use std::sync::OnceLock;

use anole::core::deploy::RolloutOutcome;
use anole::core::lifecycle::reprofile_and_rollout;
use anole::core::omi::{DriftState, FaultKind, FaultPlan, SceneDistanceScorer};
use anole::core::{AnoleConfig, AnoleError, AnoleSystem, CheckpointStore, TrainRecovery};
use anole::data::{
    generate_drifted_clip, ClipId, DatasetSource, DriftPhase, DriftSchedule, DrivingDataset,
    Frame, Location, SceneAttributes, TimeOfDay, VideoClip, Weather,
};
use anole::data::DatasetConfig;
use anole::detect::DetectionCounts;
use anole::tensor::Seed;

/// CI sweeps this env var across a small seed matrix; every assertion below
/// must hold for any value (injected faults are scheduled by draw index, so
/// perturbing the plan seed never moves them).
fn chaos_seed() -> u64 {
    std::env::var("ANOLE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Frame at which the novel regime lands in the drifted clip.
const ONSET: usize = 40;
/// Detector window shared by every test.
const WINDOW: usize = 8;

/// Training dominates test time; every test shares one trained system.
fn world() -> &'static (DrivingDataset, AnoleSystem) {
    static WORLD: OnceLock<(DrivingDataset, AnoleSystem)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(8101));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(8102)).unwrap();
        (dataset, system)
    })
}

/// A scene absent from the training distribution (paper §II case 3).
fn exotic() -> SceneAttributes {
    SceneAttributes::new(Weather::Snowy, Location::TollBooth, TimeOfDay::Night)
}

/// 200 frames of a familiar training scene whose stream abruptly switches
/// to an unseen attribute combination at [`ONSET`]. Frames before the onset
/// are byte-identical to the stationary world.
fn drifted_clip(dataset: &DrivingDataset) -> VideoClip {
    let familiar = dataset.clips()[0].attributes;
    let schedule = DriftSchedule::new(
        vec![DriftPhase::NovelScene { target: exotic(), at: ONSET, strength: 1.5 }],
        Seed(8105),
    );
    generate_drifted_clip(
        dataset.world(),
        ClipId(8100),
        DatasetSource::Shd,
        familiar,
        200,
        1.0,
        Seed(8106),
        &schedule,
    )
}

/// The fleet-facing metric over raw frames: every frame routed by the
/// decision model to its top specialist, detections scored against truth.
fn routed_f1(system: &AnoleSystem, frames: &[Frame]) -> f32 {
    let threshold = system.config().detector.threshold;
    let mut counts = DetectionCounts::default();
    for frame in frames {
        let top = system.decision().rank(&frame.features).unwrap()[0];
        let pred = system.repository().model(top).detect(&frame.features, threshold).unwrap();
        counts.accumulate(&pred, &frame.truth);
    }
    counts.f1()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anole-drift-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn scene_distance_detector_fires_after_onset_and_never_before() {
    let (dataset, system) = world();
    let split = dataset.split();
    let scorer = SceneDistanceScorer::calibrate(system, dataset, &split.train).unwrap();
    let ceiling = scorer.ceiling(system, dataset, &split.val, 0.99).unwrap();
    let mut detector = scorer.detector(WINDOW, ceiling).with_hysteresis(2, 4).with_cooldown(32);

    let clip = drifted_clip(dataset);
    let mut first_flag = None;
    for (i, frame) in clip.frames.iter().enumerate() {
        let state = scorer.observe_frame(&mut detector, system, &frame.features).unwrap();
        if state == DriftState::Drifting && first_flag.is_none() {
            first_flag = Some(i);
        }
    }

    // The familiar prefix is served in silence; the novel regime is caught
    // within a few detector windows of landing.
    let flagged = first_flag.expect("the novel regime must be flagged");
    assert!(flagged >= ONSET, "false positive at frame {flagged}, onset {ONSET}");
    assert!(
        flagged <= ONSET + 4 * WINDOW,
        "detection latency too high: flagged {flagged}, onset {ONSET}"
    );
    assert!(!detector.events().is_empty());
    assert!(detector.events()[0].frame >= ONSET);
    assert_eq!(detector.state(), DriftState::Drifting, "regime persists to stream end");

    // Bit-reproducibility of the whole detection pass.
    let clip_again = drifted_clip(dataset);
    assert_eq!(clip, clip_again);
}

#[test]
fn reprofile_recovers_routed_f1_while_the_frozen_baseline_stays_degraded() {
    let (dataset, system) = world();
    let clip = drifted_clip(dataset);
    let drifted = &clip.frames[ONSET..];
    // Re-profile on the first 120 drifted frames; measure on the held-out
    // tail of the same regime.
    let (fit, holdout) = drifted.split_at(120);

    let clean_f1 = routed_f1(system, &clip.frames[..ONSET]);
    let frozen_f1 = routed_f1(system, holdout);
    assert!(
        frozen_f1 + 0.03 < clean_f1,
        "drift must degrade the frozen system: clean {clean_f1}, frozen {frozen_f1}"
    );

    let mut reprofiled = system.clone();
    let report = reprofiled.reprofile_with_frames(dataset, fit, Seed(8110), None).unwrap();
    assert!(report.changed_anything(), "drifted footage must trigger repository work");
    assert_eq!(report.assigned_frames + report.novel_frames, fit.len());

    let recovered_f1 = routed_f1(&reprofiled, holdout);
    assert!(
        recovered_f1 > frozen_f1 + 0.03,
        "re-profile must recover: frozen {frozen_f1}, recovered {recovered_f1}"
    );
    assert!(
        recovered_f1 + 0.2 >= clean_f1,
        "recovered service must return to within ε of pre-drift: clean {clean_f1}, \
         recovered {recovered_f1}"
    );

    // The loop is deterministic end to end.
    let mut again = system.clone();
    let report_again = again.reprofile_with_frames(dataset, fit, Seed(8110), None).unwrap();
    assert_eq!(report, report_again);
    assert_eq!(reprofiled, again);
}

#[test]
fn injected_regression_rolls_back_with_zero_candidate_sessions() {
    let (dataset, system) = world();
    let clip = drifted_clip(dataset);
    let footage: Vec<Frame> = clip.frames[ONSET..ONSET + 120].to_vec();
    let dir = temp_dir("rollback");

    let mut injector = FaultPlan::new(Seed(8120 + chaos_seed()))
        .at(0, FaultKind::RegressedUpdate)
        .injector();
    let (served, reprofile, rollout) = reprofile_and_rollout(
        system,
        dataset,
        &footage,
        5,
        &dir,
        Seed(8121),
        None,
        Some(&mut injector),
    )
    .unwrap();

    assert!(reprofile.changed_anything());
    assert_eq!(rollout.outcome, RolloutOutcome::RolledBack);
    assert!(rollout.regression_injected);
    assert_eq!(rollout.sessions_on_candidate, 0, "no session may see the bad bundle");
    assert_eq!(&served, system, "fleet returns to the checksum-verified last-good bundle");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healthy_reprofile_promotes_and_the_fleet_serves_the_candidate() {
    let (dataset, system) = world();
    let clip = drifted_clip(dataset);
    let footage: Vec<Frame> = clip.frames[ONSET..ONSET + 120].to_vec();
    let dir = temp_dir("promote");

    let (served, reprofile, rollout) =
        reprofile_and_rollout(system, dataset, &footage, 5, &dir, Seed(8125), None, None)
            .unwrap();

    assert!(reprofile.changed_anything());
    assert_eq!(rollout.outcome, RolloutOutcome::Promoted);
    assert_eq!(rollout.sessions_on_candidate, 5);
    assert_ne!(&served, system, "the fleet now serves the re-profiled candidate");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_reprofile_and_stale_deliveries_still_converge_for_any_chaos_seed() {
    let (dataset, system) = world();
    let clip = drifted_clip(dataset);
    let footage: Vec<Frame> = clip.frames[ONSET..ONSET + 120].to_vec();
    let dir = temp_dir("chaos-loop");
    let store_dir = dir.join("checkpoints");

    // Reference: the loop with nothing injected.
    let (clean_served, clean_reprofile, clean_rollout) = reprofile_and_rollout(
        system,
        dataset,
        &footage,
        4,
        &dir.join("clean"),
        Seed(8141),
        None,
        None,
    )
    .unwrap();
    assert_eq!(clean_rollout.outcome, RolloutOutcome::Promoted);

    // Kill the re-profile mid-run (ReprofileAbort lands at a durable
    // checkpoint boundary, after the last-good bundle was pinned).
    let store = CheckpointStore::open(&store_dir, 8142).unwrap();
    let mut recovery = TrainRecovery::new(store).with_injector(
        FaultPlan::new(Seed(8143 + chaos_seed())).at(1, FaultKind::ReprofileAbort).injector(),
    );
    let err = reprofile_and_rollout(
        system,
        dataset,
        &footage,
        4,
        &dir.join("chaos"),
        Seed(8141),
        Some(&mut recovery),
        None,
    )
    .unwrap_err();
    assert!(matches!(err, AnoleError::Aborted { .. }));

    // Resume with the same store while the delivery path serves two stale
    // bundles: the loop retries until fresh and still converges on a system
    // bit-identical to the clean run.
    let store = CheckpointStore::open(&store_dir, 8142).unwrap();
    let mut recovery = TrainRecovery::new(store);
    let mut injector = FaultPlan::new(Seed(8144 + chaos_seed()))
        .at(0, FaultKind::StaleBundle)
        .at(1, FaultKind::StaleBundle)
        .injector();
    let (served, reprofile, rollout) = reprofile_and_rollout(
        system,
        dataset,
        &footage,
        4,
        &dir.join("chaos"),
        Seed(8141),
        Some(&mut recovery),
        Some(&mut injector),
    )
    .unwrap();

    assert_eq!(reprofile, clean_reprofile);
    assert_eq!(served, clean_served);
    assert_eq!(rollout.outcome, RolloutOutcome::Promoted);
    assert_eq!(rollout.stale_deliveries, 2, "both stale bundles were detected and retried");
    assert_eq!(rollout.downloads, 4, "every device ends on a fresh bundle");
    assert_eq!(rollout.sessions_on_candidate, 4);
    assert!(recovery.report.resumed_reprofile_steps >= 2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stationary_schedules_leave_generation_byte_identical() {
    let (dataset, _) = world();
    let familiar = dataset.clips()[0].attributes;
    let plain = dataset.world().generate_clip(
        ClipId(8130),
        DatasetSource::Shd,
        familiar,
        60,
        1.0,
        Seed(8131),
    );
    let stationary = generate_drifted_clip(
        dataset.world(),
        ClipId(8130),
        DatasetSource::Shd,
        familiar,
        60,
        1.0,
        Seed(8131),
        &DriftSchedule::stationary(Seed(8132)),
    );
    assert_eq!(plain, stationary, "a stationary schedule is a literal no-op");
}
