//! Cross-crate property tests: invariants of the generative world, the
//! detection metrics, and the online engine under arbitrary inputs.

use anole::cluster::KMeans;
use anole::data::{
    ClipId, DatasetSource, Location, SceneAttributes, TimeOfDay, Weather, WorldConfig, WorldModel,
};
use anole::detect::{threshold_probs, DetectionCounts};
use anole::tensor::{Matrix, Seed};
use proptest::prelude::*;

fn attrs_strategy() -> impl Strategy<Value = SceneAttributes> {
    (0usize..5, 0usize..8, 0usize..3).prop_map(|(w, l, t)| {
        SceneAttributes::new(Weather::ALL[w], Location::ALL[l], TimeOfDay::ALL[t])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every scene produces well-formed clips: finite bounded features,
    /// truth consistent with metadata, photometrics in range.
    #[test]
    fn generated_clips_are_well_formed(
        attrs in attrs_strategy(),
        seed in 0u64..1000,
        length in 1usize..40,
        density in 0.2f32..2.0,
    ) {
        let world = WorldModel::new(WorldConfig::default(), Seed(999));
        let clip = world.generate_clip(
            ClipId(0),
            DatasetSource::Shd,
            attrs,
            length,
            density,
            Seed(seed),
        );
        prop_assert_eq!(clip.len(), length);
        for frame in &clip.frames {
            prop_assert!(frame.features.iter().all(|v| v.is_finite() && v.abs() <= 1.0));
            prop_assert!((0.0..=1.0).contains(&frame.meta.brightness));
            prop_assert!((0.0..=1.0).contains(&frame.meta.contrast));
            prop_assert!(frame.occupied_cells() <= frame.meta.object_count);
            prop_assert!((frame.meta.object_count == 0) == (frame.occupied_cells() == 0));
        }
    }

    /// Scene styles are deterministic functions of (world seed, attributes).
    #[test]
    fn scene_styles_are_deterministic(attrs in attrs_strategy(), seed in 0u64..100) {
        let a = WorldModel::new(WorldConfig::default(), Seed(seed));
        let b = WorldModel::new(WorldConfig::default(), Seed(seed));
        prop_assert_eq!(a.scene_style(&attrs), b.scene_style(&attrs));
    }

    /// F1 is symmetric in the sense that swapping predictions and truth
    /// leaves it unchanged (precision and recall swap).
    #[test]
    fn f1_is_swap_invariant(cells in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..64)) {
        let pred: Vec<bool> = cells.iter().map(|&(p, _)| p).collect();
        let truth: Vec<bool> = cells.iter().map(|&(_, t)| t).collect();
        let mut forward = DetectionCounts::default();
        forward.accumulate(&pred, &truth);
        let mut backward = DetectionCounts::default();
        backward.accumulate(&truth, &pred);
        prop_assert!((forward.f1() - backward.f1()).abs() < 1e-6);
    }

    /// Thresholding at 0 marks everything detected; at > 1 nothing.
    #[test]
    fn thresholding_extremes(probs in proptest::collection::vec(0.0f32..=1.0, 1..64)) {
        prop_assert!(threshold_probs(&probs, 0.0).iter().all(|&d| d));
        prop_assert!(threshold_probs(&probs, 1.1).iter().all(|&d| !d));
    }

    /// k-means assignments returned by `fit` agree with `predict` on the
    /// training points themselves.
    #[test]
    fn kmeans_fit_predict_agree(
        points in proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, 3), 6..40),
        k in 2usize..5,
        seed in 0u64..50,
    ) {
        prop_assume!(points.len() >= k);
        let refs: Vec<&[f32]> = points.iter().map(|p| p.as_slice()).collect();
        let m = Matrix::from_rows(&refs).unwrap();
        let fit = KMeans::new(k).fit(&m, Seed(seed)).unwrap();
        for (i, point) in points.iter().enumerate() {
            prop_assert_eq!(fit.predict(point), fit.assignments[i]);
        }
    }

    /// Scene indices are a bijection over the 120 semantic scenes.
    #[test]
    fn scene_index_bijection(attrs in attrs_strategy()) {
        let idx = attrs.scene_index();
        prop_assert!(idx < anole::data::SEMANTIC_SCENE_COUNT);
        prop_assert_eq!(SceneAttributes::from_scene_index(idx), attrs);
    }
}
