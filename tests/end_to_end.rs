//! End-to-end integration tests spanning every crate: dataset generation →
//! offline scene profiling → online inference on the device simulator.

use anole::core::eval::{cross_scene_experiment, evaluate_refs, new_scene_experiment};
use anole::core::{AnoleConfig, AnoleSystem, MethodKind, Ssm};
use anole::data::{DatasetConfig, DrivingDataset};
use anole::device::DeviceKind;
use anole::tensor::Seed;

fn small_world(seed: u64) -> (DrivingDataset, AnoleSystem) {
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(seed));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(seed + 1))
        .expect("training succeeds on the small dataset");
    (dataset, system)
}

#[test]
fn full_pipeline_produces_working_online_engine() {
    let (dataset, system) = small_world(11);
    let split = dataset.split();
    let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(13));
    engine.warm(&(0..system.config().cache.capacity).collect::<Vec<_>>());
    let result = evaluate_refs(&mut engine, &dataset, &split.test, 10).unwrap();
    // An untrained random detector on ~2 occupied cells of 16 scores far
    // below 0.3; the trained pipeline must clear it.
    assert!(result.overall_f1 > 0.3, "online F1 {}", result.overall_f1);
    // Engine bookkeeping is consistent.
    assert_eq!(engine.usage_log().len(), split.test.len());
    assert!(engine.mean_latency_ms() > 0.0);
    assert_eq!(
        engine.cache_stats().lookups(),
        split.test.len() as u64
    );
}

#[test]
fn anole_beats_the_single_shallow_model_cross_scene() {
    // This headline claim needs more data and training than the smoke
    // config: use a mid-scale world (the full paper-scale run lives in the
    // `repro` binary and EXPERIMENTS.md).
    let config = DatasetConfig {
        frames_per_clip: 120,
        kitti_clips: 4,
        bdd_clips: 12,
        shd_clips: 4,
        ..DatasetConfig::default()
    };
    let dataset = DrivingDataset::generate(&config, Seed(23));
    let mut anole_config = AnoleConfig::default();
    anole_config.repository.target_models = 10;
    anole_config.scene.train.epochs = 20;
    anole_config.detector.train.epochs = 15;
    anole_config.decision.train.epochs = 20;
    anole_config.sampling.kappa = 4000;
    anole_config.sampling.max_draws_per_arm = 400;
    let system = AnoleSystem::train(&dataset, &anole_config, Seed(24)).unwrap();
    let split = dataset.split();

    let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(29));
    engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
    let anole = evaluate_refs(&mut engine, &dataset, &split.test, 10).unwrap();

    let mut ssm = Ssm::train(&dataset, &split.train, system.config(), Seed(31)).unwrap();
    let ssm_result = evaluate_refs(&mut ssm, &dataset, &split.test, 10).unwrap();

    // The core claim at small scale: the routed pack of specialists beats
    // one compressed model of the same architecture.
    assert!(
        anole.overall_f1 > ssm_result.overall_f1,
        "Anole {} vs SSM {}",
        anole.overall_f1,
        ssm_result.overall_f1
    );
}

#[test]
fn cross_scene_report_is_internally_consistent() {
    let (dataset, system) = small_world(37);
    let report = cross_scene_experiment(&dataset, &system, 10, Seed(41)).unwrap();
    for source in &report.sources {
        for (_, result) in &source.methods {
            // Overall F1 lies within the span of the windowed series.
            let lo = result.windowed.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = result.windowed.iter().cloned().fold(0.0f32, f32::max);
            assert!(result.overall_f1 >= lo - 1e-6 && result.overall_f1 <= hi + 1e-6);
        }
    }
}

#[test]
fn new_scene_report_only_uses_unseen_clips() {
    let (dataset, system) = small_world(43);
    let report = new_scene_experiment(&dataset, &system, Seed(47)).unwrap();
    assert!(!report.rows.is_empty());
    for row in &report.rows {
        assert!(!dataset.clips()[row.clip].seen);
        assert_eq!(row.source, dataset.clips()[row.clip].source);
    }
}

#[test]
fn system_serializes_and_round_trips() {
    let (dataset, system) = small_world(53);
    let json = serde_json::to_string(&system).unwrap();
    let back: AnoleSystem = serde_json::from_str(&json).unwrap();
    assert_eq!(&back, &system);
    // The deserialized system predicts identically.
    let split = dataset.split();
    let frame = dataset.frame(split.test[0]);
    let a = system.decision().rank(&frame.features).unwrap();
    let b = back.decision().rank(&frame.features).unwrap();
    assert_eq!(a, b);
}

#[test]
fn training_is_reproducible_across_runs() {
    let (_, system_a) = small_world(59);
    let (_, system_b) = small_world(59);
    assert_eq!(&system_a, &system_b);
}

#[test]
fn different_devices_differ_only_in_cost_not_accuracy() {
    let (dataset, system) = small_world(61);
    let split = dataset.split();
    let refs = &split.test[..60.min(split.test.len())];

    let run = |device| {
        let mut engine = system.online_engine(device, Seed(67));
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        let result = evaluate_refs(&mut engine, &dataset, refs, 10).unwrap();
        (result.overall_f1, engine.mean_latency_ms())
    };
    let (f1_nano, ms_nano) = run(DeviceKind::JetsonNano);
    let (f1_tx2, ms_tx2) = run(DeviceKind::JetsonTx2Nx);
    assert_eq!(f1_nano, f1_tx2, "accuracy must not depend on the device");
    assert!(ms_nano > ms_tx2, "the Nano is slower than the TX2");
}

#[test]
fn unseen_methods_all_get_reasonable_scores() {
    let (dataset, system) = small_world(71);
    let report = new_scene_experiment(&dataset, &system, Seed(73)).unwrap();
    for kind in [
        MethodKind::Anole,
        MethodKind::Sdm,
        MethodKind::Ssm,
        MethodKind::Cdg,
        MethodKind::Dmm,
    ] {
        let mean = report.mean_f1(kind).unwrap();
        assert!(
            (0.05..1.0).contains(&mean),
            "{kind} unseen mean {mean} out of plausible band"
        );
    }
}
