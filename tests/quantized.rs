//! End-to-end tests of the quantized int8 serving path: the acceptance
//! sweep's F1-delta gate, serving-precision bookkeeping, and the cache
//! density win from byte-accounted int8 specialists.

use anole::core::eval::evaluate_refs;
use anole::core::{AnoleConfig, AnoleSystem, CacheConfig};
use anole::data::{DatasetConfig, DrivingDataset};
use anole::device::{DeviceKind, GpuMemoryModel};
use anole::nn::Precision;
use anole::tensor::Seed;

fn world(data_seed: u64, train_seed: u64, config: &AnoleConfig) -> (DrivingDataset, AnoleSystem) {
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(data_seed));
    let system = AnoleSystem::train(&dataset, config, Seed(train_seed))
        .expect("training succeeds on the small dataset");
    (dataset, system)
}

#[test]
fn acceptance_sweep_enforces_the_f1_delta_gate() {
    let config = AnoleConfig::fast();
    let (dataset, mut system) = world(401, 402, &config);
    let epsilon = system.config().quant.epsilon_f1;

    let report = system.quantize_models(&dataset).expect("sweep");
    for outcome in &report.accepted {
        assert!(
            outcome.f1_delta() <= epsilon,
            "accepted model {} lost {} F1, over the ε = {epsilon} gate",
            outcome.id,
            outcome.f1_delta()
        );
        assert_eq!(
            system.repository().model(outcome.id).serving_precision(),
            Precision::Int8
        );
    }
    for outcome in &report.rejected {
        assert!(
            outcome.f1_delta() > epsilon,
            "rejected model {} lost only {} F1",
            outcome.id,
            outcome.f1_delta()
        );
        assert_eq!(
            system.repository().model(outcome.id).serving_precision(),
            Precision::Fp32
        );
    }
    assert_eq!(
        report.accepted.len() + report.rejected.len(),
        system.repository().len()
    );
    assert!(report.worst_accepted_delta() <= epsilon);

    // The sweep re-gates from the fp32 weights, so running it again is a
    // no-op with an identical report.
    let again = system.quantize_models(&dataset).expect("re-sweep");
    assert_eq!(report, again);

    // The (possibly mixed-precision) system still serves online above the
    // same floor the fp32 end-to-end test clears.
    let split = dataset.split();
    let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(403));
    engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
    let result = evaluate_refs(&mut engine, &dataset, &split.test, 10).unwrap();
    assert!(result.overall_f1 > 0.3, "online F1 {}", result.overall_f1);
}

#[test]
fn quant_enabled_training_matches_the_explicit_sweep() {
    let mut quant_config = AnoleConfig::fast();
    quant_config.quant.enabled = true;
    let (_, auto) = world(407, 408, &quant_config);

    let (dataset, mut manual) = world(407, 408, &AnoleConfig::fast());
    manual.quantize_models(&dataset).expect("sweep");

    // Same weights, same gate decisions — only the config flag differs.
    assert_eq!(auto.repository(), manual.repository());
    assert_eq!(auto.decision(), manual.decision());
}

#[test]
fn quantized_specialists_pack_at_least_three_times_denser() {
    // ε = 1.0 forces the gate to accept every specialist (an F1 delta can
    // never exceed 1.0), isolating the capacity claim from gate outcomes.
    let mut config = AnoleConfig::fast();
    config.repository.target_models = 6;
    config.quant.epsilon_f1 = 1.0;
    let (dataset, mut system) = world(411, 412, &config);
    let fp32_twin = system.clone();
    let report = system.quantize_models(&dataset).expect("sweep");
    assert!(report.rejected.is_empty(), "ε = 1.0 must accept everything");

    let fp32_bytes = system.repository().model(0).net.weight_bytes();
    let i8_bytes = system.repository().model(0).serving_bytes();
    assert!(
        i8_bytes * 3 < fp32_bytes,
        "int8 serving bytes {i8_bytes} not ~4x below fp32 {fp32_bytes}"
    );

    // Device memory model: at the same byte budget, at least 3x more
    // quantized specialists fit.
    let mem = GpuMemoryModel::for_device(DeviceKind::JetsonTx2Nx);
    assert!(
        mem.max_cached_models_at(i8_bytes) >= 3 * mem.max_cached_models_at(fp32_bytes),
        "i8 fits {} vs fp32 {}",
        mem.max_cached_models_at(i8_bytes),
        mem.max_cached_models_at(fp32_bytes)
    );

    if system.repository().len() < 4 {
        return; // not enough specialists survived training to fill a cache
    }

    // Engine-level: a byte budget sized for exactly one fp32 model holds at
    // least three int8 specialists.
    let budget = fp32_bytes + fp32_bytes / 3;
    let cache = CacheConfig {
        capacity: 64,
        byte_budget: Some(budget),
        ..system.config().cache
    };
    let all: Vec<usize> = (0..system.repository().len()).collect();

    let mut i8_system = system.clone();
    i8_system.set_cache_config(cache);
    let mut i8_engine = i8_system.online_engine(DeviceKind::JetsonTx2Nx, Seed(413));
    i8_engine.warm(&all);

    let mut fp32_system = fp32_twin;
    fp32_system.set_cache_config(cache);
    let mut fp32_engine = fp32_system.online_engine(DeviceKind::JetsonTx2Nx, Seed(413));
    fp32_engine.warm(&all);

    let fp32_resident = fp32_engine.cache_stats().resident_bytes / fp32_bytes;
    assert_eq!(fp32_resident, 1, "budget was sized for exactly one fp32 model");
    assert!(
        i8_engine.quantized_resident() as u64 >= 3 * fp32_resident,
        "only {} quantized specialists resident",
        i8_engine.quantized_resident()
    );
    assert!(i8_engine.cache_stats().resident_bytes <= budget);
    assert!(fp32_engine.cache_stats().resident_bytes <= budget);
}
