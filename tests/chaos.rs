//! Chaos harness: the online pipeline under injected faults.
//!
//! Streams clips through `run_realtime` while a seeded `FaultPlan` injects
//! model-load failures, sensor dropouts, NaN frames, memory pressure, and
//! decision anomalies. The engine must never panic, must surface its health
//! through telemetry, and must degrade gracefully: stream F1 under faults
//! stays above a pinned-fallback-model-only baseline, and a zero-fault plan
//! leaves every output bit-identical to an un-instrumented engine.

use std::sync::OnceLock;

use anole::core::omi::{
    run_realtime, FaultKind, FaultPlan, FrameProcessor, HealthState, OnlineEngine, Telemetry,
};
use anole::core::{AnoleConfig, AnoleError, AnoleSystem};
use anole::data::{DatasetConfig, DatasetSource, DrivingDataset, Frame};
use anole::device::{DeviceKind, LatencyModel};
use anole::nn::ReferenceModel;
use anole::tensor::{rng_from_seed, Seed};
use proptest::prelude::*;
use rand::rngs::StdRng;

/// Training dominates test time; every test shares one trained system.
fn world() -> &'static (DrivingDataset, AnoleSystem) {
    static WORLD: OnceLock<(DrivingDataset, AnoleSystem)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(9001));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(9002)).unwrap();
        (dataset, system)
    })
}

fn test_frames(dataset: &DrivingDataset, n: usize) -> Vec<Frame> {
    dataset
        .split()
        .test
        .iter()
        .take(n)
        .map(|&r| dataset.frame(r).clone())
        .collect()
}

/// An engine streamed through `run_realtime` while logging telemetry.
struct TelemetryProcessor<'a> {
    engine: OnlineEngine<'a>,
    telemetry: Telemetry,
}

impl FrameProcessor for TelemetryProcessor<'_> {
    fn process(
        &mut self,
        frame: &Frame,
        _source: DatasetSource,
    ) -> Result<(Vec<bool>, f32), AnoleError> {
        let outcome = self.engine.step(&frame.features)?;
        self.telemetry.record(&outcome, Some(&frame.truth));
        Ok((outcome.detections, outcome.latency_ms))
    }
}

/// The degenerate deployment the fallback chain bottoms out at: one fixed
/// compressed model for every frame, no routing, no cache.
struct PinnedOnly<'a> {
    system: &'a AnoleSystem,
    model: usize,
    latency: LatencyModel,
    rng: StdRng,
}

impl<'a> PinnedOnly<'a> {
    fn new(system: &'a AnoleSystem, model: usize, device: DeviceKind, seed: Seed) -> Self {
        Self {
            system,
            model,
            latency: LatencyModel::for_device(device),
            rng: rng_from_seed(seed),
        }
    }
}

impl FrameProcessor for PinnedOnly<'_> {
    fn process(
        &mut self,
        frame: &Frame,
        _source: DatasetSource,
    ) -> Result<(Vec<bool>, f32), AnoleError> {
        let threshold = self.system.config().detector.threshold;
        let detections = self
            .system
            .repository()
            .model(self.model)
            .detect(&frame.features, threshold)?;
        let ms = self.latency.inference_ms(ReferenceModel::Yolov3Tiny, &mut self.rng);
        Ok((detections, ms))
    }
}

fn chaos_engine<'a>(system: &'a AnoleSystem, plan: FaultPlan, seed: Seed) -> OnlineEngine<'a> {
    let mut engine = system
        .online_engine(DeviceKind::JetsonTx2Nx, seed)
        .with_fault_injector(plan.injector())
        .with_pinned_fallback(0);
    engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
    engine
}

/// ISSUE acceptance: ≥10% model-load failure plus one mid-stream
/// memory-pressure event. The stream completes without panicking, telemetry
/// reports `Degraded` health, and stream F1 beats running the pinned
/// fallback model alone.
#[test]
fn survives_load_failures_and_memory_pressure_above_pinned_baseline() {
    let (dataset, system) = world();
    let frames = test_frames(dataset, 150);

    let plan = FaultPlan::new(Seed(31))
        .with_transient_load_rate(0.12)
        .at(40, FaultKind::MemoryPressure { capacity: 2 });
    let mut chaos = TelemetryProcessor {
        engine: chaos_engine(system, plan, Seed(32)),
        telemetry: Telemetry::new(),
    };
    let report = run_realtime(&mut chaos, &frames, DatasetSource::Shd, 30.0).unwrap();
    assert_eq!(report.frames_offered, frames.len());
    assert!(report.frames_processed > 0);

    // Health is surfaced through telemetry, not just the engine.
    assert!(chaos.telemetry.degraded_frames() > 0, "no degraded frames recorded");
    assert!(
        chaos.telemetry.records().iter().any(|r| r.health == HealthState::Degraded),
        "telemetry never reported Degraded"
    );
    assert!(chaos.telemetry.fault_total() > 0);
    let health = chaos.engine.health_report();
    assert!(health.faults.transient_load > 0, "no load faults applied: {health}");
    assert_eq!(health.faults.memory_pressure, 1);

    // Graceful degradation still beats the pinned-model-only deployment.
    let mut pinned_only = PinnedOnly::new(system, 0, DeviceKind::JetsonTx2Nx, Seed(33));
    let baseline = run_realtime(&mut pinned_only, &frames, DatasetSource::Shd, 30.0).unwrap();
    assert!(
        report.stream_f1 > baseline.stream_f1,
        "chaos anole {} vs pinned-only {}",
        report.stream_f1,
        baseline.stream_f1
    );
}

/// Escalating fault schedules: every level completes, and stream F1 decays
/// monotonically-ish (generous slack for simulation noise) as faults ramp
/// from none to brutal.
#[test]
fn escalating_fault_schedules_degrade_f1_without_panics() {
    let (dataset, system) = world();
    let frames = test_frames(dataset, 120);

    let levels: Vec<FaultPlan> = vec![
        FaultPlan::new(Seed(41)),
        FaultPlan::new(Seed(42))
            .with_transient_load_rate(0.08)
            .with_sensor_dropout_rate(0.05),
        FaultPlan::new(Seed(43))
            .with_transient_load_rate(0.15)
            .with_sensor_dropout_rate(0.05)
            .with_nan_frame_rate(0.02)
            .at(40, FaultKind::MemoryPressure { capacity: 2 }),
        FaultPlan::new(Seed(44))
            .with_transient_load_rate(0.25)
            .with_permanent_load_rate(0.05)
            .with_sensor_dropout_rate(0.12)
            .with_nan_frame_rate(0.05)
            .with_decision_anomaly_rate(0.05)
            .at(30, FaultKind::MemoryPressure { capacity: 1 })
            .at(60, FaultKind::BundleCorruption),
    ];

    let mut f1s = Vec::new();
    for (level, plan) in levels.into_iter().enumerate() {
        let zero = plan.is_zero_fault();
        let mut engine = chaos_engine(system, plan, Seed(45));
        let report = run_realtime(&mut engine, &frames, DatasetSource::Shd, 30.0)
            .unwrap_or_else(|e| panic!("level {level} failed: {e}"));
        assert!(report.frames_processed > 0, "level {level} processed nothing");
        assert!(
            (0.0..=1.0).contains(&report.stream_f1),
            "level {level} f1 {}",
            report.stream_f1
        );
        if zero {
            assert_eq!(engine.health(), HealthState::Healthy);
        } else {
            assert!(engine.health_report().faults.total() > 0, "level {level} injected nothing");
        }
        f1s.push(report.stream_f1);
    }
    // Monotonic-ish: each escalation may cost accuracy but never *gains*
    // more than simulation noise, and the worst level is strictly worse
    // than fault-free.
    for pair in f1s.windows(2) {
        assert!(pair[1] <= pair[0] + 0.15, "f1 rose under more faults: {f1s:?}");
    }
    assert!(
        *f1s.last().unwrap() < f1s[0] + 0.05,
        "brutal faults did not degrade f1: {f1s:?}"
    );
}

/// Zero-fault plan → the instrumented engine is bit-identical to the plain
/// engine through the whole real-time pipeline.
#[test]
fn zero_fault_plan_is_bit_identical_through_run_realtime() {
    let (dataset, system) = world();
    let frames = test_frames(dataset, 100);

    let mut plain = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(51));
    plain.warm(&(0..system.repository().len()).collect::<Vec<_>>());
    let plain_report = run_realtime(&mut plain, &frames, DatasetSource::Shd, 30.0).unwrap();

    // Same engine seed, zero-fault injector, no pinned fallback.
    let mut instrumented = system
        .online_engine(DeviceKind::JetsonTx2Nx, Seed(51))
        .with_fault_injector(FaultPlan::new(Seed(52)).injector());
    instrumented.warm(&(0..system.repository().len()).collect::<Vec<_>>());
    let chaos_report = run_realtime(&mut instrumented, &frames, DatasetSource::Shd, 30.0).unwrap();

    assert_eq!(plain_report, chaos_report);
    assert_eq!(plain.usage_log(), instrumented.usage_log());
    assert_eq!(plain.cache_stats(), instrumented.cache_stats());
    assert_eq!(plain.mean_latency_ms(), instrumented.mean_latency_ms());
    assert_eq!(instrumented.health(), HealthState::Healthy);
    assert_eq!(instrumented.health_report().faults.total(), 0);
    assert_eq!(instrumented.health_report().fallback_depths[2], 0);
    assert_eq!(instrumented.health_report().fallback_depths[3], 0);
}

/// Everything-at-once worst case: high rates on every fault class for a
/// long stream. The only acceptable failure mode is a typed error — never
/// a panic — and with a pinned fallback not even that.
#[test]
fn saturated_fault_rates_never_panic() {
    let (dataset, system) = world();
    let frames = test_frames(dataset, 200);
    let plan = FaultPlan::new(Seed(61))
        .with_transient_load_rate(0.4)
        .with_permanent_load_rate(0.1)
        .with_sensor_dropout_rate(0.3)
        .with_nan_frame_rate(0.2)
        .with_decision_anomaly_rate(0.2)
        .at(10, FaultKind::MemoryPressure { capacity: 1 })
        .at(20, FaultKind::BundleCorruption)
        .at(90, FaultKind::MemoryPressure { capacity: 0 })
        .at(110, FaultKind::MemoryPressure { capacity: 3 });
    let mut engine = chaos_engine(system, plan, Seed(62));
    let report = run_realtime(&mut engine, &frames, DatasetSource::Shd, 30.0).unwrap();
    assert_eq!(report.frames_offered, frames.len());
    let health = engine.health_report();
    assert!(health.faults.total() > 0);
    assert_ne!(engine.health(), HealthState::Healthy);
    // The pinned fallback kept the stream alive through it all.
    assert!(report.frames_processed > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Determinism guard (ISSUE satellite): any seeded plan whose rates all
    /// clamp to zero leaves the chaos-wrapped engine's `StepOutcome` stream
    /// equal to the plain engine's, frame for frame.
    #[test]
    fn any_zero_rate_plan_matches_plain_engine(
        plan_seed in any::<u64>(),
        engine_seed in 0u64..1_000,
        negative_rate in -4.0f32..=0.0,
    ) {
        let (dataset, system) = world();
        let plan = FaultPlan::new(Seed(plan_seed))
            .with_transient_load_rate(negative_rate)
            .with_permanent_load_rate(0.0)
            .with_sensor_dropout_rate(negative_rate)
            .with_nan_frame_rate(0.0)
            .with_decision_anomaly_rate(negative_rate);
        prop_assert!(plan.is_zero_fault());

        let mut plain = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(engine_seed));
        let mut chaos = system
            .online_engine(DeviceKind::JetsonTx2Nx, Seed(engine_seed))
            .with_fault_injector(plan.injector());
        let split = dataset.split();
        for &r in split.test.iter().take(30) {
            let features = &dataset.frame(r).features;
            let a = plain.step(features).unwrap();
            let b = chaos.step(features).unwrap();
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(plain.cache_stats(), chaos.cache_stats());
        prop_assert_eq!(chaos.health(), HealthState::Healthy);
    }
}
