//! The paper's quantitative headline claims, checked against the simulator
//! at the calibrated reference scale (these do not require training).

use anole::bandit::{balance_coefficient, RandomSampler, SamplingStrategy, ThompsonSampler};
use anole::device::{DeviceKind, GpuMemoryModel, LatencyModel, PowerMode, PowerModel};
use anole::nn::ReferenceModel;
use anole::tensor::{rng_from_seed, Seed};

const ANOLE_PIPELINE: [ReferenceModel; 3] = [
    ReferenceModel::Resnet18,
    ReferenceModel::DecisionMlp,
    ReferenceModel::Yolov3Tiny,
];

/// §I: "response time (33.1% faster)" — Anole's single-model path against
/// the deep model, per device.
#[test]
fn anole_path_is_faster_than_sdm_on_every_device() {
    for kind in DeviceKind::ALL {
        let lm = LatencyModel::for_device(kind);
        let anole = lm.mean_scene_decision_ms() + lm.mean_inference_ms(ReferenceModel::Yolov3Tiny);
        let sdm = lm.mean_inference_ms(ReferenceModel::Yolov3);
        assert!(
            anole < sdm,
            "{kind}: anole path {anole} ms vs SDM {sdm} ms"
        );
    }
    // On the TX2 the paper reports 13.9 ms switching latency.
    let tx2 = LatencyModel::for_device(DeviceKind::JetsonTx2Nx);
    let path = tx2.mean_scene_decision_ms() + tx2.mean_inference_ms(ReferenceModel::Yolov3Tiny);
    assert!((path - 13.9).abs() < 0.1, "TX2 path {path} ms");
}

/// §VI-G: "the latency of YOLOv3-tiny on Jetson Nano is 87.9% lower than
/// that of YOLOv3".
#[test]
fn tiny_latency_reduction_on_nano_matches() {
    let nano = LatencyModel::for_device(DeviceKind::JetsonNano);
    let reduction = 1.0
        - nano.mean_inference_ms(ReferenceModel::Yolov3Tiny)
            / nano.mean_inference_ms(ReferenceModel::Yolov3);
    assert!((reduction - 0.879).abs() < 0.005, "reduction {reduction}");
}

/// §VI-H: "45.1% reduction in power consumption compared with SDM and an
/// inference speed of over 30 FPS with an input power of 20W".
#[test]
fn power_claims_hold_at_20w() {
    let pm = PowerModel::for_device(DeviceKind::JetsonTx2Nx);
    let top = PowerMode::tx2_modes().into_iter().last().unwrap();
    let anole = pm.evaluate(&ANOLE_PIPELINE, top);
    let sdm = pm.evaluate(&[ReferenceModel::Yolov3], top);
    let reduction = 1.0 - anole.watts / sdm.watts;
    assert!(
        (0.30..0.60).contains(&reduction),
        "power reduction {reduction:.3} not in the paper's neighbourhood"
    );
    assert!(anole.fps >= 30.0, "Anole fps {}", anole.fps);
    assert!(sdm.fps < 30.0, "SDM should not sustain 30 fps ({})", sdm.fps);
}

/// Fig. 4(a): the first frame pays a cold-start two orders of magnitude
/// above steady state.
#[test]
fn cold_start_spike_is_orders_of_magnitude() {
    let lm = LatencyModel::for_device(DeviceKind::JetsonTx2Nx).with_jitter(0.0);
    let mut rng = rng_from_seed(Seed(5));
    let trace = lm.cold_start_trace(ReferenceModel::Yolov3, 20, &mut rng);
    assert!(trace[0] / trace[1] > 50.0, "spike ratio {}", trace[0] / trace[1]);
}

/// §V-B / Fig. 7(b): a handful of cached models fits every device, and the
/// 2 GB Nano still fits at least the constrained 2-model cache.
#[test]
fn cache_capacity_fits_all_devices() {
    let nano = GpuMemoryModel::for_device(DeviceKind::JetsonNano);
    assert!(nano.max_cached_models() >= 2);
    let tx2 = GpuMemoryModel::for_device(DeviceKind::JetsonTx2Nx);
    assert!(tx2.max_cached_models() >= 5, "tx2 fits {}", tx2.max_cached_models());
    let laptop = GpuMemoryModel::for_device(DeviceKind::Laptop);
    assert!(laptop.max_cached_models() >= 19, "laptop fits the full pack");
}

/// Table II: the model-size relationships the scheme depends on.
#[test]
fn model_scale_relationships() {
    assert!(ReferenceModel::Yolov3.flops() > 10 * ReferenceModel::Yolov3Tiny.flops());
    // 19 compressed models store fewer weights than 3 deep models.
    assert!(19 * ReferenceModel::Yolov3Tiny.weight_bytes() < 3 * ReferenceModel::Yolov3.weight_bytes());
    // The decision stage adds ~8% of a tiny model's compute.
    let decision = ReferenceModel::DecisionMlp.flops() as f64;
    assert!(decision / (ReferenceModel::Yolov3Tiny.flops() as f64) < 0.01);
}

/// Fig. 3: Thompson sampling yields balanced per-arm draws where prevalence-
/// weighted random sampling mirrors the dataset bias.
#[test]
fn adaptive_sampling_balances_draws() {
    let prevalence: Vec<usize> = (0..19).map(|i| 20_000 / ((i + 1) * (i + 1))).collect();
    let mut random = RandomSampler::new(&prevalence);
    let mut rng = rng_from_seed(Seed(17));
    for _ in 0..6000 {
        let arm = random.select(&mut rng).unwrap();
        random.record_sampled(arm);
    }

    let clusters = vec![120usize; 19];
    let mut thompson = ThompsonSampler::new(&clusters, 0.5);
    let mut rng = rng_from_seed(Seed(19));
    while let Some(arm) = thompson.select(&mut rng) {
        thompson.record_sampled(arm);
    }

    let b_random = balance_coefficient(random.counts());
    let b_thompson = balance_coefficient(thompson.counts());
    assert!(
        b_thompson > 5.0 * b_random.max(1e-6),
        "thompson {b_thompson:.3} vs random {b_random:.3}"
    );
}
