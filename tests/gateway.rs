//! Gateway property tests: structural invariants of the serving gateway
//! under arbitrary fault schedules and configurations.
//!
//! Three contracts, for any seeded fault plan and any (small) fleet shape:
//! queues never exceed their configured bound (backpressure, not buffering,
//! absorbs overload); every admitted session ends in a terminal state with
//! every frame accounted for (processed + shed + dropped = total); and the
//! cross-session batched decision forward is bit-identical to per-session
//! scoring, so batching is purely a scheduling optimisation.
//!
//! `ANOLE_CHAOS_SEED` (default 0) perturbs every fault-plan seed so CI can
//! sweep the suite; the invariants hold for any value.

use std::sync::OnceLock;

use anole::core::gateway::{Gateway, GatewayConfig, GatewayReport, SessionSpec};
use anole::core::omi::FaultPlan;
use anole::core::{AnoleConfig, AnoleSystem};
use anole::data::{DatasetConfig, DrivingDataset, Frame};
use anole::tensor::{split_seed, Seed};
use proptest::prelude::*;

fn chaos_seed() -> u64 {
    std::env::var("ANOLE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Training dominates test time; every case shares one trained system.
fn world() -> &'static (DrivingDataset, AnoleSystem) {
    static WORLD: OnceLock<(DrivingDataset, AnoleSystem)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(9201));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(9202)).unwrap();
        (dataset, system)
    })
}

/// `n` test-split frames, rotated by session index so sessions differ.
fn session_frames(dataset: &DrivingDataset, session: usize, n: usize) -> Vec<Frame> {
    let split = dataset.split();
    (0..n)
        .map(|k| dataset.frame(split.test[(session * 7 + k) % split.test.len()]).clone())
        .collect()
}

fn run_fleet(
    config: GatewayConfig,
    plan: Option<FaultPlan>,
    sessions: usize,
    frames_each: usize,
    seed: u64,
) -> GatewayReport {
    let (dataset, system) = world();
    let mut gateway = Gateway::new(system, config).unwrap();
    if let Some(plan) = plan {
        gateway = gateway.with_fault_plan(plan);
    }
    for i in 0..sessions {
        gateway
            .admit(SessionSpec::new(
                session_frames(dataset, i, frames_each),
                split_seed(Seed(seed), 40_000 + i as u64),
            ))
            .unwrap();
    }
    gateway.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For ANY fault schedule and fleet shape: queues stay within their
    /// configured bound, every session reaches a terminal state, and every
    /// frame of every session is processed, shed, or dropped — none lost.
    #[test]
    fn queues_stay_bounded_and_every_frame_is_accounted_for(
        overflow in 0.0f32..0.5,
        slow in 0.0f32..0.8,
        stall in 0.0f32..0.3,
        hiccup in 0.0f32..0.3,
        plan_seed in 0u64..500,
        sessions in 1usize..5,
        frames_each in 1usize..16,
        queue_capacity in 1usize..6,
    ) {
        let config = GatewayConfig {
            max_sessions: sessions,
            queue_capacity,
            deadline_ms: 120.0,
            slow_factor: 8.0,
            ..GatewayConfig::default()
        };
        let plan = FaultPlan::new(Seed(plan_seed.wrapping_add(chaos_seed())))
            .with_queue_overflow_rate(overflow)
            .with_slow_consumer_rate(slow)
            .with_session_stall_rate(stall)
            .with_scheduler_hiccup_rate(hiccup);
        let report = run_fleet(config, Some(plan), sessions, frames_each, plan_seed);

        prop_assert_eq!(report.admitted, sessions);
        prop_assert_eq!(report.rejected, 0);
        prop_assert_eq!(report.lost_sessions(), 0, "non-terminal sessions: {:?}", report);
        prop_assert!(
            report.peak_queue_depth <= queue_capacity,
            "peak queue depth {} exceeds capacity {}",
            report.peak_queue_depth,
            queue_capacity
        );
        for s in &report.sessions {
            prop_assert!(s.state.is_terminal());
            prop_assert!(s.peak_queue_depth <= queue_capacity);
            prop_assert_eq!(
                s.processed + s.shed_frames + s.dropped_frames,
                s.frames_total,
                "session {} leaked frames: {:?}",
                s.id,
                s
            );
        }
        prop_assert_eq!(
            report.frames_processed + report.frames_shed + report.frames_dropped,
            report.sessions.iter().map(|s| s.frames_total).sum::<usize>()
        );
    }

    /// Window-batched decision scoring is bit-identical to per-session
    /// scoring: the same fleet run with batching forced on (every window
    /// with at least one candidate batches) and forced off produces
    /// identical per-session reports, frame for frame.
    #[test]
    fn batched_scoring_is_bit_identical_to_per_session(
        sessions in 1usize..5,
        frames_each in 1usize..12,
        seed in 0u64..200,
    ) {
        let lossless = GatewayConfig {
            max_sessions: sessions,
            deadline_ms: f64::INFINITY,
            shed_session_after: usize::MAX,
            ..GatewayConfig::default()
        };
        let batched = run_fleet(
            GatewayConfig { batch_min: 1, ..lossless },
            None,
            sessions,
            frames_each,
            seed,
        );
        let single = run_fleet(
            GatewayConfig { batch_min: usize::MAX, ..lossless },
            None,
            sessions,
            frames_each,
            seed,
        );
        prop_assert!(batched.batched_calls > 0 || frames_each == 0);
        prop_assert_eq!(single.batched_calls, 0);
        prop_assert_eq!(&batched.sessions, &single.sessions);
    }
}

/// The gateway is a deterministic simulation: the same configuration, fault
/// plan, and admission order reproduce the same report byte for byte.
#[test]
fn identical_runs_produce_identical_reports() {
    let config = GatewayConfig {
        max_sessions: 3,
        deadline_ms: 150.0,
        slow_factor: 10.0,
        ..GatewayConfig::default()
    };
    let plan = || {
        FaultPlan::new(Seed(chaos_seed().wrapping_add(77)))
            .with_slow_consumer_rate(0.5)
            .with_scheduler_hiccup_rate(0.1)
    };
    let a = run_fleet(config, Some(plan()), 3, 10, 7);
    let b = run_fleet(config, Some(plan()), 3, 10, 7);
    assert_eq!(a, b);
}
