//! Integration: the full persistence story — generate a dataset, train a
//! system, save both to disk, reload them in a "new process", and verify
//! the reloaded deployment behaves identically.

use anole::core::deploy::{load_bundle, read_manifest, save_bundle, simulate_download};
use anole::core::omi::Telemetry;
use anole::core::{AnoleConfig, AnoleSystem};
use anole::data::{DatasetConfig, DrivingDataset};
use anole::device::{DeviceKind, UnstableLink, UnstableLinkConfig};
use anole::tensor::{rng_from_seed, Seed};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("anole-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn dataset_and_bundle_round_trip_preserves_behaviour() {
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(201));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(202)).unwrap();

    let dataset_dir = temp_dir("dataset");
    dataset.save_to_dir(&dataset_dir).unwrap();
    let bundle_dir = temp_dir("bundle");
    let manifest = save_bundle(&system, &bundle_dir).unwrap();

    // "New process": load everything back from disk.
    let dataset2 = DrivingDataset::load_from_dir(&dataset_dir).unwrap();
    let system2 = load_bundle(&bundle_dir).unwrap();
    assert_eq!(read_manifest(&bundle_dir).unwrap(), manifest);

    // Identical online behaviour on the identical stream.
    let run = |dataset: &DrivingDataset, system: &AnoleSystem| {
        let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(203));
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        let mut telemetry = Telemetry::new();
        for &r in dataset.split().test.iter().take(40) {
            let frame = dataset.frame(r);
            let out = engine.step(&frame.features).unwrap();
            telemetry.record(&out, Some(&frame.truth));
        }
        telemetry
    };
    let original = run(&dataset, &system);
    let reloaded = run(&dataset2, &system2);
    assert_eq!(original, reloaded);
    assert_eq!(original.to_csv(), reloaded.to_csv());

    // The staged download of the bundle completes over the unstable link.
    let mut link = UnstableLink::new(UnstableLinkConfig::default());
    let mut rng = rng_from_seed(Seed(204));
    let report = simulate_download(&manifest, &mut link, &mut rng);
    assert!(report.total_ms > 0.0);
    assert!(report.chunks > 0);

    std::fs::remove_dir_all(&dataset_dir).unwrap();
    std::fs::remove_dir_all(&bundle_dir).unwrap();
}

#[test]
fn expanded_system_survives_a_bundle_round_trip() {
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(211));
    let mut system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(212)).unwrap();
    // Expand with fresh footage, then persist the *expanded* system.
    let exotic = anole::data::SceneAttributes::new(
        anole::data::Weather::Snowy,
        anole::data::Location::TollBooth,
        anole::data::TimeOfDay::Night,
    );
    let footage = dataset.world().generate_clip(
        anole::data::ClipId(9100),
        anole::data::DatasetSource::Shd,
        exotic,
        80,
        1.0,
        Seed(213),
    );
    let new_id = system.extend_with_frames(&dataset, &footage.frames, Seed(214)).unwrap();

    let dir = temp_dir("expanded");
    let manifest = save_bundle(&system, &dir).unwrap();
    assert_eq!(manifest.model_count, system.repository().len());
    assert!(manifest
        .entries
        .iter()
        .any(|e| e.file == format!("model_{new_id:03}.json")));
    let reloaded = load_bundle(&dir).unwrap();
    assert_eq!(&reloaded, &system);
    std::fs::remove_dir_all(&dir).unwrap();
}
