//! Large-fleet chaos: the serving gateway at 1k and 10k sessions.
//!
//! Admits a large fleet of short sessions while a seeded `FaultPlan`
//! injects all four gateway fault kinds (queue overflows, slow consumers,
//! session stalls, scheduler hiccups) on top of deadline-based load
//! shedding. The contracts: zero lost sessions (everything admitted ends
//! terminal), every frame accounted for, the chaos actually fired, and
//! fleet F1 stays above the pinned-fallback-model-only baseline — shedding
//! degrades freshness, not correctness.
//!
//! `ANOLE_CHAOS_SEED` (default 0) perturbs the fault-plan seed so CI can
//! sweep the suite across seeds; every assertion holds for any seed.

use std::sync::OnceLock;

use anole::core::gateway::{Gateway, GatewayConfig, GatewayReport, SessionSpec};
use anole::core::omi::FaultPlan;
use anole::core::{AnoleConfig, AnoleSystem};
use anole::data::{DatasetConfig, DrivingDataset, Frame};
use anole::detect::DetectionCounts;
use anole::tensor::{split_seed, Seed};

fn chaos_seed() -> u64 {
    std::env::var("ANOLE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Training dominates test time; both scale tiers share one system.
fn world() -> &'static (DrivingDataset, AnoleSystem) {
    static WORLD: OnceLock<(DrivingDataset, AnoleSystem)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(9301));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(9302)).unwrap();
        (dataset, system)
    })
}

/// `n` test-split frames, rotated by session index so sessions differ.
fn fleet_frames(dataset: &DrivingDataset, session: usize, n: usize) -> Vec<Frame> {
    let split = dataset.split();
    (0..n)
        .map(|k| dataset.frame(split.test[(session * 13 + k) % split.test.len()]).clone())
        .collect()
}

/// All four gateway fault kinds at once, rates low enough that most frames
/// still flow but high enough that every kind fires at fleet scale.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(Seed(seed))
        .with_queue_overflow_rate(0.02)
        .with_slow_consumer_rate(0.15)
        .with_session_stall_rate(0.05)
        .with_scheduler_hiccup_rate(0.3)
}

fn run_chaos_fleet(sessions: usize, frames_each: usize, salt: u64) -> GatewayReport {
    let (dataset, system) = world();
    let seed = chaos_seed().wrapping_add(salt);
    let config = GatewayConfig {
        max_sessions: sessions,
        deadline_ms: 200.0,
        slow_factor: 6.0,
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::new(system, config).unwrap().with_fault_plan(chaos_plan(seed));
    for i in 0..sessions {
        gateway
            .admit(SessionSpec::new(
                fleet_frames(dataset, i, frames_each),
                split_seed(Seed(seed), 40_000 + i as u64),
            ))
            .unwrap();
    }
    gateway.run()
}

/// F1 of serving every session's frames with the pinned fallback model
/// alone — the degenerate deployment load shedding must stay above.
fn pinned_baseline_f1(sessions: usize, frames_each: usize) -> f32 {
    let (dataset, system) = world();
    let threshold = system.config().detector.threshold;
    let model = system.repository().model(0);
    let mut counts = DetectionCounts::default();
    for i in 0..sessions {
        for frame in fleet_frames(dataset, i, frames_each) {
            let detections = model.detect(&frame.features, threshold).unwrap();
            counts.accumulate(&detections, &frame.truth);
        }
    }
    counts.f1()
}

fn assert_chaos_contracts(report: &GatewayReport, sessions: usize, frames_each: usize) {
    assert_eq!(report.admitted, sessions);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.lost_sessions(), 0, "lost sessions at scale {sessions}");
    assert_eq!(
        report.frames_processed + report.frames_shed + report.frames_dropped,
        sessions * frames_each,
        "frames leaked at scale {sessions}"
    );
    // The chaos actually fired: every gateway fault kind left a mark.
    assert!(report.hiccups > 0, "no scheduler hiccups injected");
    assert!(report.stalls > 0, "no session stalls injected");
    assert!(report.slow_frames > 0, "no slow consumers injected");
    assert!(
        report.overflows > 0 || report.backpressure_signals > 0,
        "queue pressure never surfaced"
    );
    // Shedding degrades freshness, not correctness: replayed frames keep
    // the fleet above the pinned-model-only deployment.
    let baseline = pinned_baseline_f1(sessions, frames_each);
    assert!(
        report.fleet_f1() > baseline,
        "fleet F1 {} fell below pinned baseline {} at scale {sessions}",
        report.fleet_f1(),
        baseline
    );
    // Most of the fleet completes; chaos quarantines nothing (no panics or
    // engine faults in the plan), it only sheds.
    assert!(report.quarantined.is_empty());
    assert_eq!(report.completed + report.shed_sessions, sessions);
}

/// 1k sessions under all four gateway fault kinds: zero lost sessions,
/// full frame accounting, F1 above the pinned baseline.
#[test]
fn thousand_session_fleet_survives_full_chaos() {
    let report = run_chaos_fleet(1000, 5, 9310);
    assert_chaos_contracts(&report, 1000, 5);
    // Window batching is doing the multiplexing, not per-session calls.
    assert!(report.batched_frames > report.single_calls);
}

/// 10k-session soak: same contracts an order of magnitude up. Ignored by
/// default (it dominates suite wall-clock); the chaos-gateway CI job runs
/// it explicitly via `cargo test --test chaos_gateway -- --ignored`.
#[test]
#[ignore = "10k-session soak; run explicitly or via the chaos-gateway CI job"]
fn ten_thousand_session_fleet_survives_full_chaos() {
    let report = run_chaos_fleet(10_000, 3, 9320);
    assert_chaos_contracts(&report, 10_000, 3);
}

/// 100k-session soak: the tier the ready-queue index exists for. Before the
/// index, every window re-scanned all admitted sessions, so total work grew
/// with admitted-count x windows even after most of the fleet completed;
/// with it, each window touches only live sessions. Ignored by default —
/// run explicitly via `cargo test --test chaos_gateway -- --ignored`.
#[test]
#[ignore = "100k-session soak; run explicitly (minutes of wall-clock)"]
fn hundred_thousand_session_fleet_survives_full_chaos() {
    let report = run_chaos_fleet(100_000, 2, 9330);
    assert_chaos_contracts(&report, 100_000, 2);
}
