//! End-to-end contracts for predictive model prefetch, driven through the
//! `anole` facade crate (so CI can sweep `ANOLE_THREADS` across the full
//! dependency stack).
//!
//! Three contracts:
//! 1. With prefetch *disabled* (the default), every other prefetch knob is
//!    inert: the full serialized `StepOutcome` stream is byte-identical to
//!    a pre-prefetch engine's.
//! 2. With prefetch *enabled*, the prediction stream — requested model and
//!    smoothed suitability — stays bit-identical: prefetch hides latency,
//!    it never changes routing.
//! 3. On a perfectly periodic scene cycle with an undersized cache, the
//!    prefetcher actually converts cold loads into background loads.

use anole::core::{AnoleConfig, AnoleSystem};
use anole::data::{DatasetConfig, DrivingDataset, Frame};
use anole::device::DeviceKind;
use anole::tensor::Seed;

fn world(seed: u64, tune: impl Fn(&mut AnoleConfig)) -> (DrivingDataset, AnoleSystem) {
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(seed));
    let mut config = AnoleConfig::fast();
    tune(&mut config);
    let system = AnoleSystem::train(&dataset, &config, Seed(seed + 1)).expect("training");
    (dataset, system)
}

fn test_frames(dataset: &DrivingDataset, n: usize) -> Vec<Frame> {
    let split = dataset.split();
    (0..n)
        .map(|k| dataset.frame(split.test[k % split.test.len()]).clone())
        .collect()
}

#[test]
fn disabled_prefetch_knobs_are_inert_end_to_end() {
    let (dataset, baseline) = world(211, |_| {});
    let (_, tuned) = world(211, |cfg| {
        // Everything but `enabled` (and `shards`, which re-shapes the cache
        // itself) cranked away from default — all of it must be dead code
        // while enabled is false.
        cfg.prefetch.min_probability = 0.9;
        cfg.prefetch.budget_ms = 1.0;
        cfg.prefetch.admission_filter = false;
    });
    let mut a = baseline.online_engine(DeviceKind::JetsonTx2Nx, Seed(213));
    let mut b = tuned.online_engine(DeviceKind::JetsonTx2Nx, Seed(213));
    for frame in test_frames(&dataset, 40) {
        let oa = a.step(&frame.features).unwrap();
        let ob = b.step(&frame.features).unwrap();
        assert_eq!(
            serde_json::to_string(&oa).unwrap(),
            serde_json::to_string(&ob).unwrap(),
            "disabled prefetch changed a step outcome"
        );
    }
    assert_eq!(a.prefetch_stats(), b.prefetch_stats());
    assert_eq!(a.prefetch_stats().issued, 0);
    assert_eq!(a.cache_stats(), b.cache_stats());
    assert_eq!(a.load_attempt_count(), b.load_attempt_count());
}

#[test]
fn enabled_prefetch_keeps_the_prediction_stream_bit_identical() {
    for seed in [311u64, 313] {
        let (dataset, off) = world(seed, |_| {});
        let (_, on) = world(seed, |cfg| {
            cfg.prefetch.enabled = true;
            cfg.prefetch.min_probability = 0.0;
            cfg.prefetch.budget_ms = 10_000.0;
        });
        let mut off_engine = off.online_engine(DeviceKind::JetsonTx2Nx, Seed(seed + 7));
        let mut on_engine = on.online_engine(DeviceKind::JetsonTx2Nx, Seed(seed + 7));
        for (i, frame) in test_frames(&dataset, 60).iter().enumerate() {
            let a = off_engine.step(&frame.features).unwrap();
            let b = on_engine.step(&frame.features).unwrap();
            assert_eq!(a.requested, b.requested, "seed {seed} frame {i}: routing diverged");
            assert_eq!(
                a.suitability.to_bits(),
                b.suitability.to_bits(),
                "seed {seed} frame {i}: suitability diverged"
            );
        }
        let stats = on_engine.prefetch_stats();
        assert!(
            stats.hits + stats.wasted <= stats.issued,
            "prefetch accounting inconsistent: {stats:?}"
        );
        assert_eq!(off_engine.prefetch_stats().issued, 0);
    }
}

#[test]
fn periodic_scene_cycle_prefetches_away_cold_loads() {
    let tune = |cfg: &mut AnoleConfig| {
        cfg.cache.capacity = 2;
        cfg.decision.suitability_smoothing = 0.0;
    };
    let (dataset, off) = world(411, tune);
    let (_, on) = world(411, |cfg| {
        tune(cfg);
        cfg.prefetch.enabled = true;
        cfg.prefetch.min_probability = 0.0;
        cfg.prefetch.budget_ms = 10_000.0;
        cfg.prefetch.admission_filter = false;
    });
    let n_models = off.repository().len();
    if n_models < 3 {
        return; // the fast config can collapse to fewer models; nothing to cycle
    }
    let mut off_engine = off.online_engine(DeviceKind::JetsonTx2Nx, Seed(417));
    let mut on_engine = on.online_engine(DeviceKind::JetsonTx2Nx, Seed(417));
    let frame = test_frames(&dataset, 1).remove(0);
    for k in 0..90usize {
        let mut scores = vec![0.0f32; n_models];
        scores[k % 3] = 1.0;
        off_engine.step_with_scores(&frame.features, &scores).unwrap();
        on_engine.step_with_scores(&frame.features, &scores).unwrap();
    }
    let stats = on_engine.prefetch_stats();
    assert!(stats.issued > 0, "prefetcher never fired on a periodic cycle");
    assert!(stats.hits > 0, "prefetched models were never used");
    assert!(
        on_engine.load_attempt_count() < off_engine.load_attempt_count(),
        "prefetch did not reduce cold loads: {} vs {}",
        on_engine.load_attempt_count(),
        off_engine.load_attempt_count()
    );
}
