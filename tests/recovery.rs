//! Kill-resume harness: the offline (OSP) pipeline under crashes.
//!
//! Aborts training at every stage boundary via an injected
//! `FaultKind::TrainAbort`, resumes from the checkpoint store, and asserts
//! the recovered system is bit-identical to an uninterrupted run with the
//! same seed. Also covers checkpoint-write faults, truncated artifacts,
//! single-bit corruption of checkpoints and bundle artifacts (both must be
//! detected on load), resumable downloads under random fault rates, and the
//! supervised fleet's quarantine path.
//!
//! `ANOLE_CHAOS_SEED` (default 0) perturbs every fault-plan seed so CI can
//! sweep the suite across seeds; scheduled faults and the bit-identity
//! contract hold for any seed.

use std::path::PathBuf;
use std::sync::OnceLock;

use anole::core::checkpoint::specialist_key;
use anole::core::deploy::{download_resumable, load_bundle, save_bundle};
use anole::core::lifecycle::{run_fleet_supervised, FleetConfig};
use anole::core::omi::{FaultKind, FaultPlan};
use anole::core::{
    context_key, AnoleConfig, AnoleError, AnoleSystem, CheckpointStore, OspStage, TrainRecovery,
};
use anole::data::{DatasetConfig, DrivingDataset};
use anole::device::{UnstableLink, UnstableLinkConfig};
use anole::tensor::{rng_from_seed, Seed};
use proptest::prelude::*;

/// CI sweeps this env var across a small seed matrix; every assertion below
/// must hold for any value.
fn chaos_seed() -> u64 {
    std::env::var("ANOLE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

const TRAIN_SEED: Seed = Seed(9101);

/// Training dominates test time; every test shares one dataset, config, and
/// uninterrupted reference system.
fn world() -> &'static (DrivingDataset, AnoleConfig, AnoleSystem) {
    static WORLD: OnceLock<(DrivingDataset, AnoleConfig, AnoleSystem)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(9100));
        let config = AnoleConfig::fast();
        let system = AnoleSystem::train(&dataset, &config, TRAIN_SEED).unwrap();
        (dataset, config, system)
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "anole-recovery-{tag}-{}-{}",
        chaos_seed(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &PathBuf) -> CheckpointStore {
    let (dataset, config, _) = world();
    CheckpointStore::open(dir, context_key(dataset, config, TRAIN_SEED)).unwrap()
}

/// With an empty store and no faults, the resumable path trains everything
/// itself and matches `AnoleSystem::train` bit-for-bit; a second run over
/// the now-populated store resumes all four stages without retraining.
#[test]
fn resumable_train_matches_plain_and_then_resumes_fully() {
    let (dataset, config, baseline) = world();
    let dir = temp_dir("fresh");

    let mut recovery = TrainRecovery::new(open_store(&dir));
    let system = AnoleSystem::train_resumable(dataset, config, TRAIN_SEED, &mut recovery).unwrap();
    assert_eq!(&system, baseline);
    assert!(recovery.report.resumed_stages.is_empty());
    assert_eq!(recovery.report.first_trained_stage, Some("scene model"));
    assert!(recovery.report.checkpoints.writes > OspStage::ALL.len());
    assert_eq!(recovery.report.checkpoints.discarded, 0);

    let mut resumed = TrainRecovery::new(open_store(&dir));
    let again = AnoleSystem::train_resumable(dataset, config, TRAIN_SEED, &mut resumed).unwrap();
    assert_eq!(&again, baseline);
    assert_eq!(
        resumed.report.resumed_stages,
        OspStage::ALL.iter().map(|s| s.name()).collect::<Vec<_>>()
    );
    assert_eq!(resumed.report.first_trained_stage, None);
    // All four stages reloaded whole; the per-specialist checkpoints inside
    // the repository stage were never needed.
    assert_eq!(resumed.report.resumed_specialists, 0);
    assert_eq!(resumed.report.checkpoints.writes, 0);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// ISSUE acceptance: kill training right after each stage boundary, resume,
/// and end with a system bit-identical to the uninterrupted run.
#[test]
fn kill_after_any_stage_then_resume_is_bit_identical() {
    let (dataset, config, baseline) = world();
    for stage in OspStage::ALL {
        let dir = temp_dir(&format!("kill-{}", stage.index()));

        let plan = FaultPlan::new(Seed(chaos_seed().wrapping_add(700 + stage.index() as u64)))
            .at(stage.index(), FaultKind::TrainAbort);
        let mut killed = TrainRecovery::new(open_store(&dir)).with_injector(plan.injector());
        let err = AnoleSystem::train_resumable(dataset, config, TRAIN_SEED, &mut killed)
            .unwrap_err();
        assert_eq!(err, AnoleError::Aborted { stage: stage.name() });
        // The kill landed *after* the stage checkpoint became durable.
        assert!(killed.store().has(stage.key()), "no checkpoint at {stage}");

        let mut resumed = TrainRecovery::new(open_store(&dir));
        let system =
            AnoleSystem::train_resumable(dataset, config, TRAIN_SEED, &mut resumed).unwrap();
        assert_eq!(&system, baseline, "resume after {stage} diverged");
        let expected_resumed: Vec<&str> = OspStage::ALL[..=stage.index()]
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(resumed.report.resumed_stages, expected_resumed);
        let expected_first = OspStage::ALL.get(stage.index() + 1).map(|s| s.name());
        assert_eq!(resumed.report.first_trained_stage, expected_first);
        assert_eq!(resumed.report.checkpoints.discarded, 0);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// ISSUE acceptance: checkpoint resume stays bit-identical through the
/// workspace-reusing trainer even when the thread count changes between the
/// original run and the resume. Per-worker warm workspaces and the chunked
/// gradient partitioning must never leak into the trained weights.
#[test]
fn resume_with_different_thread_count_is_bit_identical() {
    use anole::tensor::{parallel_config, set_parallel_config, ParallelConfig};
    let (dataset, config, baseline) = world();
    let dir = temp_dir("threads");

    let plan =
        FaultPlan::new(Seed(chaos_seed().wrapping_add(750))).at(0, FaultKind::TrainAbort);
    let mut killed = TrainRecovery::new(open_store(&dir)).with_injector(plan.injector());
    AnoleSystem::train_resumable(dataset, config, TRAIN_SEED, &mut killed).unwrap_err();
    assert!(killed.store().has(OspStage::ALL[0].key()));

    // The config is process-global, but training is thread-count-invariant
    // by contract, so neither this override nor concurrent tests can move
    // the weights.
    let prior = parallel_config();
    set_parallel_config(ParallelConfig { threads: 3, ..prior });
    let mut resumed = TrainRecovery::new(open_store(&dir));
    let result = AnoleSystem::train_resumable(dataset, config, TRAIN_SEED, &mut resumed);
    set_parallel_config(prior);
    let system = result.unwrap();
    assert_eq!(&system, baseline, "resume under threads=3 diverged");
    assert_eq!(resumed.report.resumed_stages, vec!["scene model"]);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A crash inside Algorithm 1 loses the repository stage but not the
/// specialists already trained: with only the per-specialist checkpoints on
/// disk, resume reloads them and still reproduces the baseline exactly.
#[test]
fn specialist_checkpoints_resume_mid_repository() {
    let (dataset, config, baseline) = world();
    let dir = temp_dir("specialists");

    let mut first = TrainRecovery::new(open_store(&dir));
    AnoleSystem::train_resumable(dataset, config, TRAIN_SEED, &mut first).unwrap();
    // Simulate a crash before any *stage* completed by dropping the stage
    // checkpoints and keeping the specialist ones.
    let mut store = open_store(&dir);
    for stage in OspStage::ALL {
        store.remove(stage.key());
    }
    let specialists_on_disk = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("specialist_"))
        .count();
    assert!(specialists_on_disk > 0, "run wrote no specialist checkpoints");

    let mut resumed = TrainRecovery::new(store);
    let system = AnoleSystem::train_resumable(dataset, config, TRAIN_SEED, &mut resumed).unwrap();
    assert_eq!(&system, baseline);
    assert!(resumed.report.resumed_stages.is_empty());
    assert_eq!(resumed.report.resumed_specialists, specialists_on_disk);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Checkpoint-write failures cost only resume coverage, never the run:
/// training completes bit-identically and the store simply stays empty.
#[test]
fn write_faults_never_break_training() {
    let (dataset, config, baseline) = world();
    let dir = temp_dir("wfaults");

    let plan = FaultPlan::new(Seed(chaos_seed().wrapping_add(710)))
        .with_checkpoint_write_rate(1.0);
    let mut recovery = TrainRecovery::new(open_store(&dir)).with_injector(plan.injector());
    let system = AnoleSystem::train_resumable(dataset, config, TRAIN_SEED, &mut recovery).unwrap();
    assert_eq!(&system, baseline);
    assert_eq!(recovery.report.checkpoints.writes, 0);
    assert!(recovery.report.checkpoints.write_faults > 0);
    for stage in OspStage::ALL {
        assert!(!recovery.store().has(stage.key()));
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

/// An artifact that lands truncated at rest is discarded on resume — the
/// stage silently retrains instead of trusting the corrupt checkpoint.
#[test]
fn truncated_checkpoint_is_discarded_and_retrained() {
    let (dataset, config, baseline) = world();
    let dir = temp_dir("truncated");

    // Write 0 is the scene-model stage checkpoint; it lands corrupt.
    let plan = FaultPlan::new(Seed(chaos_seed().wrapping_add(720)))
        .at(0, FaultKind::TruncatedArtifact);
    let mut first = TrainRecovery::new(open_store(&dir)).with_injector(plan.injector());
    let system = AnoleSystem::train_resumable(dataset, config, TRAIN_SEED, &mut first).unwrap();
    assert_eq!(&system, baseline);
    assert_eq!(first.report.checkpoints.truncated_writes, 1);

    let mut resumed = TrainRecovery::new(open_store(&dir));
    let again = AnoleSystem::train_resumable(dataset, config, TRAIN_SEED, &mut resumed).unwrap();
    assert_eq!(&again, baseline);
    assert!(resumed.report.checkpoints.discarded >= 1);
    assert!(!resumed.report.resumed_stages.contains(&"scene model"));
    assert!(resumed.report.resumed_stages.contains(&"model repository"));
    assert_eq!(resumed.report.first_trained_stage, Some("scene model"));

    std::fs::remove_dir_all(&dir).unwrap();
}

/// ISSUE acceptance: a device that keeps panicking is quarantined after its
/// bounded retries while the rest of the fleet completes the schedule.
#[test]
fn panicking_device_is_quarantined_without_aborting_the_fleet() {
    let (dataset, _, system) = world();
    let familiar = dataset.clips()[0].attributes;
    let schedule = [familiar, familiar];
    let config = FleetConfig {
        devices: 2,
        frames_per_day: 40,
        min_footage: 100_000,
        max_device_retries: 1,
        ..FleetConfig::default()
    };
    // Day 0 draws panic decisions for devices 0 and 1 (draws 0, 1), then
    // for device 0's retry (draw 2): device 0 panics twice and is
    // quarantined; device 1 never panics.
    let plan = FaultPlan::new(Seed(chaos_seed().wrapping_add(730)))
        .at(0, FaultKind::DevicePanic)
        .at(2, FaultKind::DevicePanic);
    let (report, _) = run_fleet_supervised(
        dataset,
        system.clone(),
        &schedule,
        &config,
        Seed(9200),
        Some(plan.injector()),
    )
    .unwrap();
    assert_eq!(report.quarantined, vec![0]);
    assert_eq!(report.days.len(), schedule.len());
    assert_eq!(report.days[0].device_panics, 2);
    // Device 1 drove both days alone after device 0 was quarantined.
    assert!(report.days.iter().all(|d| d.active_devices == 1));
}

/// Resumable downloads under random link-death and corruption rates: the
/// bundle always completes within the session budget and every byte is
/// accounted for (payload + waste == transferred).
#[test]
fn resumable_download_survives_random_faults_with_exact_byte_accounting() {
    let (_, _, system) = world();
    let dir = temp_dir("download");
    let manifest = save_bundle(system, &dir).unwrap();

    let plan = FaultPlan::new(Seed(chaos_seed().wrapping_add(740)))
        .with_link_death_rate(0.002)
        .with_truncated_artifact_rate(0.1);
    let mut link = UnstableLink::new(UnstableLinkConfig::default());
    let mut rng = rng_from_seed(Seed(9300));
    let report = download_resumable(
        &manifest,
        &mut link,
        &mut rng,
        Some(&mut plan.injector()),
        64,
    )
    .unwrap();
    assert!(report.sessions >= 1);
    assert_eq!(report.payload_bytes, manifest.total_transfer_bytes());
    assert_eq!(
        report.transferred_bytes,
        report.payload_bytes + report.wasted_bytes
    );
    if report.link_deaths + report.corrupt_arrivals > 0 {
        assert!(report.sessions > 1);
        assert!(report.wasted_bytes > 0);
    } else {
        assert_eq!(report.wasted_bytes, 0);
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Shared fixture for the bit-flip property tests: a saved bundle plus one
/// saved checkpoint, with pristine byte images kept in memory.
fn flip_fixture() -> &'static (PathBuf, Vec<(PathBuf, Vec<u8>)>, PathBuf, Vec<u8>) {
    static FIXTURE: OnceLock<(PathBuf, Vec<(PathBuf, Vec<u8>)>, PathBuf, Vec<u8>)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (_, _, system) = world();
        let dir = temp_dir("bitflip");
        let manifest = save_bundle(system, &dir).unwrap();
        let artifacts: Vec<(PathBuf, Vec<u8>)> = manifest
            .entries
            .iter()
            .map(|e| {
                let path = dir.join(&e.file);
                let bytes = std::fs::read(&path).unwrap();
                (path, bytes)
            })
            .collect();

        let mut store = open_store(&dir);
        store
            .save(&specialist_key(2, 1), &vec![0.5f32; 257], None)
            .unwrap();
        let ckpt_path = dir.join(format!("{}.ckpt", specialist_key(2, 1)));
        let ckpt_bytes = std::fs::read(&ckpt_path).unwrap();
        (dir, artifacts, ckpt_path, ckpt_bytes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ISSUE satellite: any single bit-flip anywhere in any serialized
    /// bundle artifact is detected when the bundle is loaded.
    #[test]
    fn any_single_bit_flip_in_a_bundle_artifact_is_detected(
        entry in any::<prop::sample::Index>(),
        byte in any::<prop::sample::Index>(),
        bit in 0u32..8,
    ) {
        let (dir, artifacts, _, _) = flip_fixture();
        let (path, pristine) = &artifacts[entry.index(artifacts.len())];
        let mut flipped = pristine.clone();
        let i = byte.index(flipped.len());
        flipped[i] ^= 1 << bit;
        std::fs::write(path, &flipped).unwrap();
        let result = load_bundle(dir);
        std::fs::write(path, pristine).unwrap();
        prop_assert!(result.is_err(), "bit flip in {} went undetected", path.display());
        // And the pristine bundle still loads.
        prop_assert!(load_bundle(dir).is_ok());
    }

    /// ISSUE satellite: any single bit-flip anywhere in a checkpoint file is
    /// detected on load — the artifact is discarded, never deserialized.
    #[test]
    fn any_single_bit_flip_in_a_checkpoint_is_detected(
        byte in any::<prop::sample::Index>(),
        bit in 0u32..8,
    ) {
        let (_, _, ckpt_path, pristine) = flip_fixture();
        let mut flipped = pristine.clone();
        let i = byte.index(flipped.len());
        flipped[i] ^= 1 << bit;
        std::fs::write(ckpt_path, &flipped).unwrap();
        let mut store = open_store(&ckpt_path.parent().unwrap().to_path_buf());
        let loaded: Option<Vec<f32>> = store.load(&specialist_key(2, 1));
        // Restore for the next case (a failed load deletes the file).
        std::fs::write(ckpt_path, pristine).unwrap();
        prop_assert!(loaded.is_none(), "bit flip at byte {i} bit {bit} went undetected");
        prop_assert_eq!(store.stats.discarded, 1);
    }
}
