//! End-to-end fleet observability: SLO burn-rate alerting and the
//! per-session flight recorder under deterministic chaos.
//!
//! The gateway runs on virtual time (its scheduling window *is* the SLO
//! window clock) and feeds the SLO engine from its own run counters, so a
//! fixed-seed chaos run must produce byte-stable burn-rate alerts; an
//! injected latency fault must fire the fast-burn page within the first
//! windows of the run; a quarantined session's flight record must retain
//! the fault frames; and the whole stack must be strictly passive —
//! serving output bit-identical with instrumentation on or off.

use std::sync::OnceLock;

use anole::core::gateway::{Gateway, GatewayConfig, GatewayReport, SessionSpec};
use anole::core::omi::{FaultKind, FaultPlan};
use anole::core::{AnoleConfig, AnoleError, AnoleSystem};
use anole::data::{DatasetConfig, DrivingDataset, Frame};
use anole::obs::{AlertSeverity, SloSpec};
use anole::tensor::Seed;

/// Training dominates test time; every test shares one system.
fn world() -> &'static (DrivingDataset, AnoleSystem) {
    static WORLD: OnceLock<(DrivingDataset, AnoleSystem)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(9501));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(9502)).unwrap();
        (dataset, system)
    })
}

fn frames(dataset: &DrivingDataset, n: usize) -> Vec<Frame> {
    dataset.split().test.iter().take(n).map(|&i| dataset.frame(i).clone()).collect()
}

/// Shed-ratio + latency-quantile specs with a tiny error budget.
fn specs() -> Vec<SloSpec> {
    vec![
        SloSpec::error_ratio(
            "gateway-shed-ratio",
            "gateway.frames.shed",
            "gateway.frames.total",
            0.001,
        )
        .with_slow_windows(4),
        SloSpec::quantile("gateway-step-latency", "gateway.step.latency_ms", 0.99, 200.0)
            .with_slow_windows(4),
    ]
}

/// A chaos run where every frame draws an injected slow-consumer latency
/// fault against a 1 ms deadline: frames pile up and shed from the first
/// windows on, blowing the 0.1% shed budget by orders of magnitude.
fn chaos_run(system: &AnoleSystem, dataset: &DrivingDataset, slos: bool) -> GatewayReport {
    let config = GatewayConfig {
        deadline_ms: 1.0,
        shed_session_after: usize::MAX,
        slow_factor: 20.0,
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::new(system, config)
        .unwrap()
        .with_fault_plan(FaultPlan::new(Seed(9510)).with_slow_consumer_rate(1.0));
    if slos {
        gateway = gateway.with_slos(specs());
    }
    for i in 0..3u64 {
        gateway.admit(SessionSpec::new(frames(dataset, 24), Seed(9520 + i))).unwrap();
    }
    gateway.run()
}

#[test]
fn fixed_seed_chaos_produces_byte_stable_burn_rate_alerts() {
    let (dataset, system) = world();
    let a = chaos_run(system, dataset, true);
    let b = chaos_run(system, dataset, true);
    assert!(!a.slo_violations.is_empty(), "chaos run fired no alerts");
    assert_eq!(
        serde_json::to_string(&a.slo_violations).unwrap(),
        serde_json::to_string(&b.slo_violations).unwrap(),
        "burn-rate alerts must be byte-stable across identical seeded runs"
    );
    assert_eq!(a, b);
}

#[test]
fn injected_latency_fault_fires_the_fast_burn_page_early() {
    let (dataset, system) = world();
    let report = chaos_run(system, dataset, true);
    let first_page = report
        .slo_violations
        .iter()
        .find(|a| a.severity == AlertSeverity::Page)
        .expect("a blown budget must page");
    // The fault is armed from frame 0 and the first over-deadline frame
    // sheds within the first few scheduling windows, so the single-window
    // fast-burn condition pages near the start of the run — not at the
    // tail after the long window fills.
    assert!(
        first_page.window <= 10,
        "fast-burn page too late: window {} of {}",
        first_page.window,
        report.windows
    );
    assert!(report.windows > first_page.window as usize, "page did not precede run end");
    // The slow-burn warn needs its 4-window span before it can fire.
    let first_warn = report.slo_violations.iter().find(|a| a.severity == AlertSeverity::Warn);
    if let Some(warn) = first_warn {
        assert!(warn.window >= 4, "warn before the long window filled: {warn:?}");
    }
    // Burn rates are reported relative to the budget.
    assert!(first_page.burn_rate >= 14.4, "{first_page:?}");
}

#[test]
fn quarantined_sessions_dump_flight_records_with_the_fault_frames() {
    let (dataset, system) = world();
    let config = GatewayConfig {
        flight_recorder_frames: 8,
        deadline_ms: f64::INFINITY,
        shed_session_after: usize::MAX,
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::new(system, config).unwrap();
    gateway.admit(SessionSpec::new(frames(dataset, 8), Seed(9531))).unwrap();
    // Session 1: a scheduled sensor dropout at engine frame 2, then its
    // handler refuses frame 6 — the quarantine dump must still hold the
    // fault frame with its degraded-health annotations.
    let mut served = 0usize;
    gateway
        .admit_with_handler(
            SessionSpec {
                fault_plan: Some(FaultPlan::new(Seed(9532)).at(2, FaultKind::SensorDropout)),
                ..SessionSpec::new(frames(dataset, 8), Seed(9533))
            },
            Box::new(move |_, _| {
                served += 1;
                if served > 6 {
                    Err(AnoleError::InvalidFrame { detail: "handler refused".into() })
                } else {
                    Ok(())
                }
            }),
        )
        .unwrap();
    let report = gateway.run();
    assert_eq!(report.quarantined.len(), 1);
    let flight = report.quarantined[0].flight.as_ref().expect("armed recorder dumps");
    let fault_frames: Vec<u32> =
        flight.frames.iter().filter(|f| f.faults > 0).map(|f| f.frame).collect();
    assert_eq!(fault_frames, vec![2], "dump lost the fault frame: {}", flight.render());
    // The wide events carry the serving context around the fault.
    assert!(flight.frames.iter().any(|f| f.latency_ms > 0.0));
    assert!(flight.frames_seen >= 7);
    // The renderer emits one aligned row per retained frame.
    let text = flight.render();
    assert_eq!(text.lines().count(), 2 + flight.frames.len(), "{text}");
    // The healthy session carries no dump.
    assert_eq!(report.sessions[0].flight, None);
    let _ = gateway.take_session_errors();
}

#[test]
fn instrumentation_is_strictly_passive_and_off_by_default() {
    let (dataset, system) = world();
    let plain = chaos_run(system, dataset, false);
    let instrumented = chaos_run(system, dataset, true);
    // Serving behaviour is bit-identical; only the alert list differs.
    let mut stripped = instrumented.clone();
    stripped.slo_violations.clear();
    assert_eq!(stripped, plain);
    // Default-off reports serialize without any observability keys, so
    // recorded fleets from before this subsystem existed compare clean.
    let json = serde_json::to_string(&plain).unwrap();
    assert!(!json.contains("slo_violations"));
    assert!(!json.contains("flight"));
}
