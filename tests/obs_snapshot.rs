//! End-to-end acceptance of the observability layer (runs only with
//! `--features obs`): one full train + serve run must populate metrics from
//! every OSP stage, the cache, and the online engine, produce a non-empty
//! span trace, and link telemetry records to engine-step spans.
#![cfg(feature = "obs")]

use anole::core::omi::Telemetry;
use anole::core::{AnoleConfig, AnoleSystem};
use anole::data::{DatasetConfig, DrivingDataset};
use anole::device::DeviceKind;
use anole::obs::{MetricsSnapshot, TickClock};
use anole::tensor::Seed;

#[test]
fn full_run_populates_metrics_spans_and_telemetry_links() {
    anole::obs::reset();
    // Deterministic ticks instead of wall-clock: span timings in this test
    // depend only on the number of clock reads.
    anole::obs::set_clock(Box::new(TickClock::default()));

    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(1));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(2)).unwrap();

    let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(3));
    engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
    let split = dataset.split();
    let mut telemetry = Telemetry::new();
    for &r in split.test.iter().take(50) {
        let frame = dataset.frame(r);
        let outcome = engine.step(&frame.features).unwrap();
        telemetry.record(&outcome, Some(&frame.truth));
    }

    let snap = anole::obs::snapshot();
    let names = snap.metric_names();

    // The acceptance gate: at least 12 distinct metrics spanning all four
    // OSP stages plus the cache and the engine.
    assert!(
        names.len() >= 12,
        "expected >= 12 distinct metrics, got {}: {names:?}"
    );
    for prefix in ["osp.scene.", "osp.tcm.", "osp.ass.", "osp.tdm.", "cache.", "omi.", "nn."] {
        assert!(
            names.iter().any(|n| n.starts_with(prefix)),
            "no metric with prefix {prefix:?} in {names:?}"
        );
    }

    // Specific signals from each subsystem.
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert!(counter("osp.tcm.candidates_trained") >= counter("osp.tcm.candidates_accepted"));
    assert!(counter("osp.ass.rounds") > 0);
    assert!(counter("nn.train.epochs") > 0);
    assert_eq!(counter("omi.step.frames"), 50);
    assert!(counter("cache.hits") + counter("cache.misses") >= 50);

    // The engine's latency histogram saw every frame.
    let latency = snap
        .histograms
        .iter()
        .find(|h| h.name == "omi.step.latency_ms")
        .expect("latency histogram");
    assert_eq!(latency.histogram.count(), 50);

    // Spans: a non-empty hierarchical trace with the stage taxonomy.
    assert!(!snap.spans.is_empty());
    let trace = anole::obs::render_trace();
    for span_name in ["osp.train", "osp.tcm.train", "nn.trainer.fit", "omi.engine.step"] {
        assert!(trace.contains(span_name), "trace missing {span_name}:\n{trace}");
    }

    // Telemetry records link back to the engine-step spans.
    assert!(telemetry.records().iter().all(|r| r.span_id > 0));
    let mut span_ids: Vec<u64> = telemetry.records().iter().map(|r| r.span_id).collect();
    span_ids.dedup();
    assert_eq!(span_ids.len(), 50, "each frame gets its own step span");

    // The JSON export round-trips losslessly.
    let parsed: MetricsSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
    assert_eq!(parsed, snap);

    // Restore the default clock for any later test in this binary.
    anole::obs::set_clock(Box::new(anole::obs::MonotonicClock::default()));
}
